//! Thread-parallel batch serving over a shared, immutable [`Engine`].
//!
//! A compiled engine is immutable after [`crate::EngineBuilder::build`]: the view
//! DTD, min-size tables, cost model, and insertlet package are Theorem 6's
//! precompiled artefacts, read-only for the rest of their life. That makes
//! the engine exactly the shape that shares cheaply across OS threads —
//! `Engine: Send + Sync` is asserted at compile time below, so one
//! `Arc<Engine>` (or a plain `&Engine` under [`std::thread::scope`])
//! serves any number of workers with **zero** per-request locking.
//!
//! Two serving shapes are provided:
//!
//! * [`Engine::propagate_batch`] — fan *independent* `(document, update)`
//!   requests across a small std-only worker pool. Results come back in
//!   request order and are byte-identical to a sequential run: each
//!   request is self-contained (its fresh identifiers derive from its own
//!   document and update), so thread count and scheduling cannot leak into
//!   any propagation.
//! * [`SessionPool`] — the repeated-update path. Sessions are checked out
//!   per document key; while a lease is held no other worker can touch
//!   that document's session, so [`Session::commit`] is isolated per
//!   document while different documents commit concurrently.
//!
//! ```
//! use std::sync::Arc;
//! use xvu_dtd::parse_dtd;
//! use xvu_edit::parse_script;
//! use xvu_propagate::Engine;
//! use xvu_tree::{parse_term_with_ids, Alphabet, NodeIdGen};
//! use xvu_view::parse_annotation;
//!
//! let mut alpha = Alphabet::new();
//! let mut gen = NodeIdGen::new();
//! let dtd = parse_dtd(&mut alpha, "r -> (a.(b+c).d)*\nd -> ((a+b).c)*").unwrap();
//! let ann = parse_annotation(&mut alpha, "hide r b\nhide r c\nhide d a\nhide d b").unwrap();
//! let t0 = parse_term_with_ids(
//!     &mut alpha, &mut gen,
//!     "r#0(a#1, b#2, d#3(a#7, c#8), a#4, c#5, d#6(b#9, c#10))",
//! ).unwrap();
//! let s0 = parse_script(
//!     &mut alpha,
//!     "nop:r#0(del:a#1, del:d#3(del:c#8), nop:a#4, \
//!      ins:d#11(ins:c#13, ins:c#14), ins:a#12, nop:d#6(nop:c#10, ins:c#15))",
//! ).unwrap();
//!
//! // One engine, shared by reference count across worker threads.
//! let engine = Arc::new(
//!     Engine::builder().alphabet(alpha).dtd(dtd).annotation(ann).build().unwrap(),
//! );
//! let requests: Vec<_> = (0..8).map(|_| (t0.clone(), s0.clone())).collect();
//! let results = engine.propagate_batch(&requests, 4);
//! assert_eq!(results.len(), 8);
//! for r in &results {
//!     assert_eq!(r.as_ref().unwrap().cost, 14); // the paper's Fig. 7 optimum
//! }
//! ```

use crate::algorithm::{propagate_with_cache, Propagation};
use crate::engine::{Engine, Session};
use crate::error::PropagateError;
use crate::scratch::PropScratch;
use std::collections::HashMap;
use std::hash::Hash;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};
use xvu_edit::Script;
use xvu_tree::DocTree;

// The serving contract, checked by the compiler: a compiled engine (and
// everything a batch worker touches) crosses and is shared across threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Engine>();
    assert_send_sync::<crate::EngineBuilder>();
    assert_send_sync::<Propagation>();
    assert_send_sync::<PropagateError>();
    assert_send_sync::<Session<'static>>();
    assert_send_sync::<SessionPool<'static, u64>>();
};

impl Engine {
    /// Propagates a batch of independent `(document, update)` requests,
    /// fanning them across at most `jobs` OS worker threads.
    ///
    /// `results[i]` always answers `requests[i]` — ordering is
    /// deterministic regardless of thread scheduling — and every result is
    /// identical to what a sequential [`Engine::instance`] +
    /// [`Engine::propagate`] run would produce, because each request's
    /// fresh identifiers derive only from its own document and update.
    /// A failing request reports its own error without disturbing the
    /// rest of the batch.
    ///
    /// `jobs` is clamped to `1..=requests.len()`; `jobs <= 1` runs inline
    /// on the calling thread with no pool at all.
    pub fn propagate_batch(
        &self,
        requests: &[(DocTree, Script)],
        jobs: usize,
    ) -> Vec<Result<Propagation, PropagateError>> {
        // Each worker owns one `PropScratch`, reused across every request
        // it serves — scratch is pure working memory, so reuse cannot leak
        // state between requests (or change any result).
        let one = |(doc, update): &(DocTree, Script), scratch: &mut PropScratch| {
            if self.shared_cache_enabled() {
                // A short-lived session routes the request through the
                // engine-owned shared memo tier: structurally repeated
                // subtrees across the batch are solved once. Validation
                // order (source, then update) and every propagation are
                // byte-identical to the stateless path below.
                return self.open(doc)?.propagate(update);
            }
            let inst = self.instance(doc, update)?;
            propagate_with_cache(
                &inst,
                &self.cost_model(),
                self.config(),
                None,
                None,
                scratch,
                None,
            )
        };
        let jobs = jobs.clamp(1, requests.len().max(1));
        if jobs <= 1 {
            let mut scratch = PropScratch::new();
            return requests.iter().map(|r| one(r, &mut scratch)).collect();
        }
        let next = AtomicUsize::new(0);
        let mut slots: Vec<Option<Result<Propagation, PropagateError>>> = Vec::new();
        slots.resize_with(requests.len(), || None);
        std::thread::scope(|scope| {
            let workers: Vec<_> = (0..jobs)
                .map(|_| {
                    // Workers pull the next unclaimed request index off a
                    // shared atomic counter (work stealing without a
                    // queue) and buffer `(index, result)` locally; the
                    // engine itself is shared by plain `&self`.
                    scope.spawn(|| {
                        let mut served = Vec::new();
                        let mut scratch = PropScratch::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some(req) = requests.get(i) else { break };
                            served.push((i, one(req, &mut scratch)));
                        }
                        served
                    })
                })
                .collect();
            for w in workers {
                for (i, result) in w.join().expect("batch worker panicked") {
                    slots[i] = Some(result);
                }
            }
        });
        slots
            .into_iter()
            .map(|r| r.expect("every request index was claimed by exactly one worker"))
            .collect()
    }
}

/// One pool entry: either a parked session or a marker that some worker
/// holds the lease.
enum Slot<'e> {
    Ready(Box<Session<'e>>),
    CheckedOut,
}

/// A keyed pool of open [`Session`]s over one shared [`Engine`] — the
/// repeated-update serving path.
///
/// Each document (identified by a caller-chosen key) has at most one live
/// session. [`SessionPool::checkout`] hands out an exclusive
/// [`SessionLease`]; until the lease drops, no other worker can observe or
/// advance that document, so propagate/commit sequences are isolated *per
/// document* while distinct documents proceed fully in parallel.
///
/// The pool itself is `Sync`: share it by reference across scoped threads
/// (or wrap pool + engine in `Arc`s at the application level).
pub struct SessionPool<'e, K: Eq + Hash + Clone = u64> {
    engine: &'e Engine,
    slots: Mutex<HashMap<K, Slot<'e>>>,
    returned: Condvar,
    capacity: Option<usize>,
}

impl<'e, K: Eq + Hash + Clone> SessionPool<'e, K> {
    /// An empty, unbounded pool serving documents with `engine`.
    pub fn new(engine: &'e Engine) -> SessionPool<'e, K> {
        SessionPool {
            engine,
            slots: Mutex::new(HashMap::new()),
            returned: Condvar::new(),
            capacity: None,
        }
    }

    /// An empty pool that tracks at most `capacity` documents (parked or
    /// leased). Checking out a *new* key while full fails with
    /// [`PropagateError::PoolAtCapacity`] instead of opening an unbounded
    /// number of sessions — the substrate an LRU layer needs: evict a
    /// parked session ([`SessionPool::evict`]) and retry.
    ///
    /// `capacity` must be ≥ 1.
    pub fn with_capacity(engine: &'e Engine, capacity: usize) -> SessionPool<'e, K> {
        assert!(capacity >= 1, "SessionPool capacity must be ≥ 1");
        SessionPool {
            engine,
            slots: Mutex::new(HashMap::new()),
            returned: Condvar::new(),
            capacity: Some(capacity),
        }
    }

    /// The engine shared by every pooled session.
    pub fn engine(&self) -> &'e Engine {
        self.engine
    }

    /// Number of documents currently tracked (parked or checked out).
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// The configured document bound, or `None` for an unbounded pool
    /// (see [`SessionPool::with_capacity`]).
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Whether the pool tracks no documents at all.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Checks out the session for `key`, **blocking** while another
    /// worker holds it (per-document commit isolation).
    ///
    /// On first checkout of a key the session is opened from `doc`
    /// (validating it once, like [`Engine::open`]); later checkouts ignore
    /// `doc` and resume the session wherever its commits left it. The
    /// lease returns the session to the pool on drop.
    pub fn checkout(
        &self,
        key: K,
        doc: &DocTree,
    ) -> Result<SessionLease<'_, 'e, K>, PropagateError> {
        let mut slots = self.lock();
        loop {
            match slots.get_mut(&key) {
                Some(Slot::CheckedOut) => {
                    slots = self
                        .returned
                        .wait(slots)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
                Some(slot @ Slot::Ready(_)) => {
                    let session = Self::take_ready(slot);
                    return Ok(self.lease(key, session));
                }
                None => {
                    if let Some(cap) = self.capacity {
                        if slots.len() >= cap {
                            return Err(PropagateError::PoolAtCapacity { capacity: cap });
                        }
                    }
                    // claim the key under the same lock that observed its
                    // absence, so no second worker can claim it too
                    slots.insert(key.clone(), Slot::CheckedOut);
                    drop(slots);
                    return self.open_claimed(key, doc);
                }
            }
        }
    }

    /// Non-blocking [`SessionPool::checkout`]: returns `Ok(None)` when the
    /// key's session is currently leased to another worker.
    pub fn try_checkout(
        &self,
        key: K,
        doc: &DocTree,
    ) -> Result<Option<SessionLease<'_, 'e, K>>, PropagateError> {
        {
            let mut slots = self.lock();
            match slots.get_mut(&key) {
                Some(Slot::CheckedOut) => return Ok(None),
                Some(slot @ Slot::Ready(_)) => {
                    let session = Self::take_ready(slot);
                    return Ok(Some(self.lease(key, session)));
                }
                None => {
                    if let Some(cap) = self.capacity {
                        if slots.len() >= cap {
                            return Err(PropagateError::PoolAtCapacity { capacity: cap });
                        }
                    }
                    slots.insert(key.clone(), Slot::CheckedOut);
                }
            }
        }
        self.open_claimed(key, doc).map(Some)
    }

    /// Swaps a `Ready` slot to `CheckedOut` and hands its session out.
    fn take_ready(slot: &mut Slot<'e>) -> Box<Session<'e>> {
        match std::mem::replace(slot, Slot::CheckedOut) {
            Slot::Ready(session) => session,
            Slot::CheckedOut => unreachable!("caller matched Ready"),
        }
    }

    /// Opens the session for a key the caller has already claimed (the
    /// `CheckedOut` marker is in place), *outside* the lock — validation
    /// is O(|doc|) and must not serialise the whole pool. On failure the
    /// claim is released and waiters are woken.
    fn open_claimed(
        &self,
        key: K,
        doc: &DocTree,
    ) -> Result<SessionLease<'_, 'e, K>, PropagateError> {
        match self.engine.open(doc) {
            Ok(session) => Ok(self.lease(key, Box::new(session))),
            Err(e) => {
                self.lock().remove(&key);
                self.returned.notify_all();
                Err(e)
            }
        }
    }

    /// Removes the **parked** session for `key` and hands it to the
    /// caller (inspect [`Session::commits`], write
    /// [`Session::document`] back to long-term storage, or just drop it —
    /// dropping releases every propagation-cache memo the session held).
    ///
    /// Eviction never races a lease: a key whose session is currently
    /// checked out (or mid-open) reports [`EvictOutcome::Leased`] and the
    /// pool is left untouched — the caller decides whether to retry after
    /// the lease returns or pick another victim. An untracked key reports
    /// [`EvictOutcome::Unknown`]. The capacity slot frees immediately, and
    /// any checkout blocked on the key is woken to reopen it fresh.
    pub fn evict(&self, key: &K) -> EvictOutcome<'e> {
        let mut slots = self.lock();
        match slots.get(key) {
            Some(Slot::Ready(_)) => match slots.remove(key) {
                Some(Slot::Ready(session)) => {
                    // a checkout may be blocked waiting for this key; it
                    // must re-observe the now-absent slot and open fresh
                    self.returned.notify_all();
                    EvictOutcome::Evicted(session)
                }
                _ => unreachable!("matched Ready above"),
            },
            Some(Slot::CheckedOut) => EvictOutcome::Leased,
            None => EvictOutcome::Unknown,
        }
    }

    fn lock(&self) -> MutexGuard<'_, HashMap<K, Slot<'e>>> {
        self.slots
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn lease(&self, key: K, session: Box<Session<'e>>) -> SessionLease<'_, 'e, K> {
        SessionLease {
            pool: self,
            key: Some(key),
            session: Some(session),
        }
    }
}

impl<K: Eq + Hash + Clone> std::fmt::Debug for SessionPool<'_, K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionPool")
            .field("documents", &self.len())
            .finish_non_exhaustive()
    }
}

/// The outcome of [`SessionPool::evict`]: either the parked session
/// itself, or an explicit reason why nothing was evicted.
#[derive(Debug)]
pub enum EvictOutcome<'e> {
    /// The session was removed from the pool and is now owned by the
    /// caller (its committed document travels with it).
    Evicted(Box<Session<'e>>),
    /// The key's session is leased to a worker (or mid-open): eviction is
    /// refused, never raced. Retry after the lease drops or defer to
    /// another victim.
    Leased,
    /// The pool does not track this key.
    Unknown,
}

impl<'e> EvictOutcome<'e> {
    /// The evicted session, if one was removed.
    pub fn session(self) -> Option<Box<Session<'e>>> {
        match self {
            EvictOutcome::Evicted(s) => Some(s),
            _ => None,
        }
    }

    /// Whether a session was actually removed.
    pub fn is_evicted(&self) -> bool {
        matches!(self, EvictOutcome::Evicted(_))
    }
}

/// An exclusive lease on one document's [`Session`], handed out by
/// [`SessionPool::checkout`].
///
/// Dereferences to the session (mutably, so [`Session::commit`] and
/// [`Session::apply`] work through the lease) and parks it back in the
/// pool on drop, waking one blocked checkout of the same key.
pub struct SessionLease<'p, 'e, K: Eq + Hash + Clone> {
    pool: &'p SessionPool<'e, K>,
    key: Option<K>,
    session: Option<Box<Session<'e>>>,
}

impl<'e, K: Eq + Hash + Clone> Deref for SessionLease<'_, 'e, K> {
    type Target = Session<'e>;
    fn deref(&self) -> &Session<'e> {
        self.session.as_ref().expect("session present until drop")
    }
}

impl<'e, K: Eq + Hash + Clone> DerefMut for SessionLease<'_, 'e, K> {
    fn deref_mut(&mut self) -> &mut Session<'e> {
        self.session.as_mut().expect("session present until drop")
    }
}

impl<K: Eq + Hash + Clone> Drop for SessionLease<'_, '_, K> {
    fn drop(&mut self) {
        let (key, session) = (
            self.key.take().expect("dropped once"),
            self.session.take().expect("dropped once"),
        );
        self.pool.lock().insert(key, Slot::Ready(session));
        self.pool.returned.notify_all();
    }
}

impl<K: Eq + Hash + Clone> std::fmt::Debug for SessionLease<'_, '_, K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionLease")
            .field("commits", &self.commits())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use xvu_edit::{output_tree, script_to_term};

    fn paper_engine() -> (Engine, DocTree, Script) {
        let fx = fixtures::paper_running_example();
        let engine = Engine::builder()
            .alphabet(fx.alpha.clone())
            .dtd(fx.dtd.clone())
            .annotation(fx.ann.clone())
            .build()
            .unwrap();
        (engine, fx.t0.clone(), fx.s0.clone())
    }

    #[test]
    fn batch_matches_sequential_in_order() {
        let (engine, t0, s0) = paper_engine();
        let requests: Vec<_> = (0..7).map(|_| (t0.clone(), s0.clone())).collect();
        let sequential = engine.propagate_batch(&requests, 1);
        for jobs in [2, 4, 8] {
            let parallel = engine.propagate_batch(&requests, jobs);
            assert_eq!(parallel.len(), sequential.len());
            for (p, s) in parallel.iter().zip(&sequential) {
                let (p, s) = (p.as_ref().unwrap(), s.as_ref().unwrap());
                assert_eq!(p.cost, s.cost);
                assert_eq!(
                    script_to_term(&p.script, engine.alphabet()),
                    script_to_term(&s.script, engine.alphabet())
                );
            }
        }
    }

    #[test]
    fn batch_reports_per_request_errors_in_place() {
        let (engine, t0, s0) = paper_engine();
        let fx = fixtures::paper_running_example();
        let mut alpha = fx.alpha.clone();
        let mut gen = xvu_tree::NodeIdGen::starting_at(100);
        let bad_doc =
            xvu_tree::parse_term_with_ids(&mut alpha, &mut gen, "r#100(a#101, b#102)").unwrap();
        let requests = vec![
            (t0.clone(), s0.clone()),
            (bad_doc, s0.clone()),
            (t0.clone(), s0.clone()),
        ];
        let results = engine.propagate_batch(&requests, 3);
        assert_eq!(results[0].as_ref().unwrap().cost, 14);
        assert!(matches!(results[1], Err(PropagateError::SourceNotValid(_))));
        assert_eq!(results[2].as_ref().unwrap().cost, 14);
    }

    #[test]
    fn empty_batch_is_empty() {
        let (engine, _, _) = paper_engine();
        assert!(engine.propagate_batch(&[], 8).is_empty());
    }

    #[test]
    fn pool_checkout_resumes_committed_state() {
        let (engine, t0, s0) = paper_engine();
        let pool: SessionPool<'_, u64> = SessionPool::new(&engine);
        let expected = {
            let mut lease = pool.checkout(7, &t0).unwrap();
            let prop = lease.apply(&s0).unwrap();
            assert_eq!(prop.cost, 14);
            output_tree(&prop.script).unwrap()
        }; // lease dropped: session parked
        assert_eq!(pool.len(), 1);
        // the next checkout of the same key resumes past the commit and
        // ignores the (now stale) document argument
        let lease = pool.checkout(7, &t0).unwrap();
        assert_eq!(lease.commits(), 1);
        assert_eq!(lease.document(), &expected);
    }

    #[test]
    fn pool_try_checkout_reports_contention() {
        let (engine, t0, _) = paper_engine();
        let pool: SessionPool<'_, u64> = SessionPool::new(&engine);
        let held = pool.checkout(1, &t0).unwrap();
        assert!(pool.try_checkout(1, &t0).unwrap().is_none());
        // a different key is immediately available
        assert!(pool.try_checkout(2, &t0).unwrap().is_some());
        drop(held);
        assert!(pool.try_checkout(1, &t0).unwrap().is_some());
    }

    #[test]
    fn pool_rejects_invalid_documents_without_poisoning_the_key() {
        let (engine, t0, _) = paper_engine();
        let fx = fixtures::paper_running_example();
        let mut alpha = fx.alpha.clone();
        let mut gen = xvu_tree::NodeIdGen::starting_at(100);
        let bad =
            xvu_tree::parse_term_with_ids(&mut alpha, &mut gen, "r#100(a#101, b#102)").unwrap();
        let pool: SessionPool<'_, u64> = SessionPool::new(&engine);
        assert!(pool.checkout(9, &bad).is_err());
        assert!(pool.is_empty());
        // the key is free again for a valid document
        assert!(pool.checkout(9, &t0).is_ok());
    }

    #[test]
    fn pool_evicts_only_parked_sessions() {
        let (engine, t0, s0) = paper_engine();
        let pool: SessionPool<'_, u64> = SessionPool::new(&engine);
        let mut lease = pool.checkout(3, &t0).unwrap();
        lease.apply(&s0).unwrap();
        // leased: eviction is refused explicitly, never raced
        assert!(matches!(pool.evict(&3), EvictOutcome::Leased));
        assert_eq!(pool.len(), 1, "refused eviction leaves the pool intact");
        drop(lease);
        // parked: the evicted session comes back whole — commit count and
        // committed document intact, ready for write-back
        let session = pool.evict(&3).session().expect("parked: evicted");
        assert_eq!(session.commits(), 1);
        assert!(engine.dtd().is_valid(session.document()));
        assert!(matches!(pool.evict(&3), EvictOutcome::Unknown)); // gone now
        assert!(pool.is_empty());
        // the key is immediately reusable (capacity slot freed)
        assert!(pool.checkout(3, &t0).is_ok());
    }

    #[test]
    fn pool_eviction_of_leased_key_defers_until_lease_returns() {
        // The LRU pattern: a victim that turns out to be leased is skipped
        // now and evicts cleanly once its lease drops — no lost commits.
        let (engine, t0, s0) = paper_engine();
        let pool: SessionPool<'_, u64> = SessionPool::new(&engine);
        std::thread::scope(|scope| {
            let worker = scope.spawn(|| {
                let mut lease = pool.checkout(9, &t0).unwrap();
                lease.apply(&s0).unwrap();
            });
            // concurrent eviction attempts can only ever observe Leased or
            // Evicted-after-return; the session is never torn out mid-use
            loop {
                match pool.evict(&9) {
                    EvictOutcome::Evicted(session) => {
                        assert_eq!(session.commits(), 1, "lease work survived");
                        break;
                    }
                    EvictOutcome::Leased | EvictOutcome::Unknown => {
                        std::thread::yield_now();
                    }
                }
            }
            worker.join().unwrap();
        });
        assert!(pool.is_empty());
    }

    #[test]
    fn pool_capacity_bounds_new_checkouts() {
        let (engine, t0, _) = paper_engine();
        let pool: SessionPool<'_, u64> = SessionPool::with_capacity(&engine, 2);
        assert_eq!(pool.capacity(), Some(2));
        let a = pool.checkout(1, &t0).unwrap();
        drop(pool.checkout(2, &t0).unwrap());
        assert_eq!(pool.len(), 2);
        // a third document is refused — leased and parked slots both count
        assert!(matches!(
            pool.checkout(3, &t0),
            Err(PropagateError::PoolAtCapacity { capacity: 2 })
        ));
        assert!(matches!(
            pool.try_checkout(3, &t0),
            Err(PropagateError::PoolAtCapacity { capacity: 2 })
        ));
        // existing keys keep working at capacity
        drop(a);
        drop(pool.checkout(1, &t0).unwrap());
        // evicting frees a slot for the new key
        assert!(pool.evict(&2).is_evicted());
        assert!(pool.checkout(3, &t0).is_ok());
        // an unbounded pool reports no capacity
        let unbounded: SessionPool<'_, u64> = SessionPool::new(&engine);
        assert_eq!(unbounded.capacity(), None);
    }

    #[test]
    fn pool_serialises_commits_per_document_across_threads() {
        let (engine, t0, s0) = paper_engine();
        let pool: SessionPool<'_, u64> = SessionPool::new(&engine);
        let threads = 4;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    // every worker hammers the same document key; the
                    // lease serialises them, so each sees a consistent
                    // view and commits exactly once
                    let mut lease = pool.checkout(42, &t0).unwrap();
                    let update = if lease.commits() == 0 {
                        s0.clone()
                    } else {
                        xvu_edit::nop_script(lease.view())
                    };
                    lease.apply(&update).unwrap();
                });
            }
        });
        let lease = pool.checkout(42, &t0).unwrap();
        assert_eq!(lease.commits(), threads as u64);
    }
}
