//! Propagation graphs (paper §4).
//!
//! For every preserved node `n ∈ N_Δ` (the `Nop` nodes of the update), the
//! **propagation graph** `G_n` interleaves three walks: over the source
//! children `m_1 … m_k`, over the content-model states `Q` of `D(λ(n))`,
//! and over the script children `m'_1 … m'_ℓ`. Vertices are triples
//! `(m_i, q, m'_j)` restricted to aligned segments (see
//! [`crate::segments`]); the six edge kinds are exactly the paper's:
//!
//! | kind | move | condition | weight |
//! |------|------|-----------|--------|
//! | (i) invisible insert | state only | `A(x,y)=0`, `q→q'` on `y` | charge(`y`) |
//! | (ii) invisible delete | `i−1 → i` | `m_i` hidden | `|t|_{m_i}|` |
//! | (iii) invisible nop | `i−1 → i`, state | `m_i` hidden, `q→q'` on its label | 0 |
//! | (iv) visible insert | `j−1 → j`, state | `λ_S(m'_j) = Ins(y)`, `A(x,y)=1` | min inverse size of `Out(S|_{m'_j})` |
//! | (v) visible delete | both advance | `λ_S(m'_j) = Del(y)`, `m_i = m'_j` | `|t|_{m_i}|` |
//! | (vi) visible nop | both advance, state | `λ_S(m'_j) = Nop(y)`, `m_i = m'_j` | cheapest path in `G_{m_i}` |
//!
//! A *propagation path* runs from `(c_0, q_0, c_0)` to `(m_k, q, m'_ℓ)`
//! with `q ∈ F`. Theorem 3: paths capture exactly the schema-compliant,
//! side-effect-free propagations; Theorem 4: cheapest paths capture the
//! cost-minimal ones.

use crate::cost::CostModel;
use crate::error::PropagateError;
use crate::instance::Instance;
use crate::pathgraph::PathGraph;
use crate::scratch::PropScratch;
use crate::segments::Segmentation;
use crate::selection::{Classify, EdgeClass};
use xvu_automata::{Nfa, StateId};
use xvu_edit::EditOp;
use xvu_tree::{NodeId, SlotMap, Sym};

/// A vertex `(m_i, q, m'_j)` of a propagation graph.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct PropVertex {
    /// Source position `i ∈ 0..=k` (`0` = `c_0`).
    pub tpos: u32,
    /// Content-model state.
    pub state: StateId,
    /// Script position `j ∈ 0..=ℓ` (`0` = `c_0`).
    pub spos: u32,
}

/// An edge of a propagation graph — one of the paper's six kinds.
///
/// Edges identify the child they consume **positionally** — by its index
/// in the owning node's source child word (`tpos`, the `m_{i+1}` walked
/// over) or script child word (`spos`, the `m'_{j+1}`) — never by
/// [`NodeId`]. A graph therefore mentions no document-specific
/// identifiers at all: two structurally equal subtrees yield *identical*
/// graphs, which is what lets the engine's shared memo cache serve one
/// graph to every document of a family (keyed by
/// [`xvu_tree::InternId`]). Consumers resolve positions against the node
/// they are walking: `inst.source.children(n)[tpos]` /
/// `inst.update.children(n)[spos]`, or
/// [`crate::PropagationForest::resolve_child`] when no instance is at
/// hand. For the common-child kinds ((v)/(vi)) the source and script
/// children coincide, so `tpos` resolves the node in both trees.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PropEdge {
    /// (i): insert a fresh invisible `y` fragment.
    InsInvisible(Sym),
    /// (ii): delete the hidden source child.
    DelInvisible {
        /// Position of the hidden source child `m_{i+1}` in the node's
        /// source child word.
        tpos: u32,
    },
    /// (iii): keep the hidden source child untouched.
    NopInvisible {
        /// Position of the hidden source child `m_{i+1}` in the node's
        /// source child word.
        tpos: u32,
        /// Whether the child keeps its automaton-state type.
        preserves_type: bool,
    },
    /// (iv): insert an inverse of the subtree the user inserted.
    InsVisible {
        /// Position of the inserting script child `m'_{j+1}` in the
        /// node's script child word.
        spos: u32,
    },
    /// (v): delete the visible child the user deleted.
    DelVisible {
        /// Position of the common node (`m_{i+1} = m'_{j+1}`) in the
        /// node's source child word.
        tpos: u32,
    },
    /// (vi): keep the visible child, recursing into `G_{m_i}`.
    NopVisible {
        /// Position of the common node (`m_{i+1} = m'_{j+1}`) in the
        /// node's source child word.
        tpos: u32,
        /// Whether the child keeps its automaton-state type.
        preserves_type: bool,
    },
}

impl Classify for PropEdge {
    fn class(&self) -> EdgeClass {
        match self {
            PropEdge::NopInvisible { .. } | PropEdge::NopVisible { .. } => EdgeClass::Keep,
            PropEdge::DelInvisible { .. } | PropEdge::DelVisible { .. } => EdgeClass::Delete,
            PropEdge::InsInvisible(_) | PropEdge::InsVisible { .. } => EdgeClass::Insert,
        }
    }
    fn tie_break(&self) -> u64 {
        match self {
            PropEdge::InsInvisible(y) => y.index() as u64,
            _ => 0,
        }
    }
    fn preserves_type(&self) -> bool {
        match self {
            PropEdge::NopInvisible { preserves_type, .. }
            | PropEdge::NopVisible { preserves_type, .. } => *preserves_type,
            _ => false,
        }
    }
}

/// The propagation graph of one preserved node.
pub type PropGraph = PathGraph<PropVertex, PropEdge>;

/// Builds `G_n` for preserved node `n`.
///
/// `child_costs` maps already-processed preserved children to their
/// cheapest propagation cost ((vi)-weights); `inverse_sizes` maps inserting
/// script children to their minimal inverse size ((iv)-weights). Both are
/// dense tables keyed by the *update* tree's slots. `orig_states` is the
/// typing run over `n`'s source child word ([`source_child_run`]) —
/// callers holding a session cache pass their memoised copy; `None` means
/// the content model is nondeterministic and typing is unavailable.
/// `scratch` pools the segmentation and interning buffers (clear-not-free)
/// — a warm scratch leaves the returned graph as the only fresh
/// allocation.
pub fn build_prop_graph(
    inst: &Instance<'_>,
    n: NodeId,
    cost: &CostModel<'_>,
    child_costs: &SlotMap<u64>,
    inverse_sizes: &SlotMap<u64>,
    orig_states: Option<&[StateId]>,
    scratch: &mut PropScratch,
) -> Result<PropGraph, PropagateError> {
    let x = inst.source.label(n);
    let model = inst.dtd.content_model(x);
    let nq = model.num_states() as u32;
    let update_slot = |id: NodeId| inst.update.slot(id).expect("script child in update tree");

    let seg = Segmentation::new_with(
        inst.source.children(n),
        inst.update.children(n),
        &mut scratch.seg,
    )?;
    let (k, l) = (seg.k(), seg.l());

    // Vertex interning. Pairs are enumerated per segment (never the full
    // grid), in a deterministic order — edge insertion order is the final
    // tie-break of every selector, so it must not depend on hash-map
    // iteration. Within a segment the aligned `j`s of a fixed row `i` are
    // one contiguous range and rows are emitted contiguously, so a base
    // offset and first-`j` per row make `vid` pure arithmetic — every
    // edge-target below is an aligned pair, by construction of the six
    // edge kinds.
    seg.aligned_pairs_into(&mut scratch.pairs);
    let aligned = &scratch.pairs;
    let mut vertices: Vec<PropVertex> = Vec::with_capacity(aligned.len() * nq as usize);
    {
        let row_base = &mut scratch.row_base;
        let row_j0 = &mut scratch.row_j0;
        let row_seen = &mut scratch.row_seen;
        row_base.clear();
        row_base.resize(k + 1, 0);
        row_j0.clear();
        row_j0.resize(k + 1, 0);
        row_seen.clear();
        row_seen.resize(k + 1, false);
        for &(i, j) in aligned {
            if !row_seen[i as usize] {
                row_seen[i as usize] = true;
                row_base[i as usize] = vertices.len() as u32;
                row_j0[i as usize] = j;
            }
            for q in 0..nq {
                vertices.push(PropVertex {
                    tpos: i,
                    state: StateId(q),
                    spos: j,
                });
            }
        }
    }
    let (row_base, row_j0) = (&scratch.row_base, &scratch.row_j0);
    let vid = |i: u32, q: StateId, j: u32| {
        debug_assert!(seg.aligned(i as usize, j as usize));
        row_base[i as usize] + (j - row_j0[i as usize]) * nq + q.0
    };

    let mut g: PropGraph = PathGraph::new(vertices, vid(0, model.start(), 0));

    for &(i, j) in aligned {
        for q in model.states() {
            let v = vid(i, q, j);

            // (i) invisible insert — stay at (i, j).
            for &(y, q2) in model.transitions_from(q) {
                if !inst.ann.is_visible(x, y) && cost.insertable(y) {
                    g.add_edge(v, vid(i, q2, j), cost.charge(y), PropEdge::InsInvisible(y));
                }
            }

            // source-side moves on hidden child m_{i+1}
            if (i as usize) < k && !seg.t_common[i as usize] {
                let child = seg.t_children[i as usize];
                let y = inst.source.label(child);
                debug_assert!(
                    !inst.ann.is_visible(x, y),
                    "non-common source child must be hidden"
                );
                // (ii) invisible delete — no state move.
                g.add_edge(
                    v,
                    vid(i + 1, q, j),
                    inst.source.subtree_size(child) as u64,
                    PropEdge::DelInvisible { tpos: i },
                );
                // (iii) invisible nop — consume a transition on y.
                for &(s, q2) in model.transitions_from(q) {
                    if s == y {
                        let preserves_type = orig_states.is_some_and(|os| os[i as usize] == q);
                        g.add_edge(
                            v,
                            vid(i + 1, q2, j),
                            0,
                            PropEdge::NopInvisible {
                                tpos: i,
                                preserves_type,
                            },
                        );
                    }
                }
            }

            // script-side move on inserted child m'_{j+1}
            if (j as usize) < l && !seg.s_common[j as usize] {
                let child = seg.s_children[j as usize];
                let el = inst.update.label(child);
                debug_assert_eq!(el.op, EditOp::Ins, "non-common script child must insert");
                let y = el.label;
                if inst.ann.is_visible(x, y) {
                    let w = inverse_sizes[update_slot(child)];
                    for &(s, q2) in model.transitions_from(q) {
                        if s == y {
                            g.add_edge(v, vid(i, q2, j + 1), w, PropEdge::InsVisible { spos: j });
                        }
                    }
                }
            }

            // synchronised moves on a common child
            if (i as usize) < k
                && (j as usize) < l
                && seg.t_common[i as usize]
                && seg.s_common[j as usize]
            {
                let tchild = seg.t_children[i as usize];
                let schild = seg.s_children[j as usize];
                debug_assert_eq!(tchild, schild, "aligned commons must coincide");
                let el = inst.update.label(schild);
                match el.op {
                    EditOp::Del => {
                        // (v) visible delete — no state move.
                        g.add_edge(
                            v,
                            vid(i + 1, q, j + 1),
                            inst.source.subtree_size(tchild) as u64,
                            PropEdge::DelVisible { tpos: i },
                        );
                    }
                    EditOp::Nop => {
                        // (vi) visible nop — recurse.
                        let y = el.label;
                        let w = child_costs[update_slot(tchild)];
                        for &(s, q2) in model.transitions_from(q) {
                            if s == y {
                                let preserves_type =
                                    orig_states.is_some_and(|os| os[i as usize] == q);
                                g.add_edge(
                                    v,
                                    vid(i + 1, q2, j + 1),
                                    w,
                                    PropEdge::NopVisible {
                                        tpos: i,
                                        preserves_type,
                                    },
                                );
                            }
                        }
                    }
                    EditOp::Ins => unreachable!("common child cannot be Ins"),
                }
            }
        }
    }

    for q in model.accepting_states() {
        g.set_goal(vid(k as u32, q, l as u32));
    }
    seg.recycle(&mut scratch.seg);
    Ok(g)
}

/// The typing run of preserved node `n`'s source child word, for
/// deterministic content models: `states[i]` = the state before consuming
/// the `(i+1)`-th child, with `states[k]` the final state. `None` for
/// nondeterministic models (typing unavailable, as the paper notes typing
/// "would require the automata to be deterministic").
///
/// Depends only on the node's source children — sessions memoise it per
/// node and feed it back to [`build_prop_graph`] across updates.
pub fn source_child_run(inst: &Instance<'_>, n: NodeId) -> Option<Vec<StateId>> {
    let model = inst.dtd.content_model(inst.source.label(n));
    deterministic_run(model, inst.source.children(n), inst)
}

/// [`source_child_run`] over an explicit model and child slice.
fn deterministic_run(
    model: &Nfa,
    t_children: &[NodeId],
    inst: &Instance<'_>,
) -> Option<Vec<StateId>> {
    if !model.is_deterministic() {
        return None;
    }
    let mut states = Vec::with_capacity(t_children.len() + 1);
    let mut q = model.start();
    states.push(q);
    for &c in t_children {
        let y = inst.source.label(c);
        q = model.step(q, y).next()?;
        states.push(q);
    }
    Some(states)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use crate::forest::PropagationForest;
    use xvu_dtd::{min_sizes, InsertletPackage};

    /// Builds the forest of the running example and returns it.
    fn paper_forest() -> (fixtures::PaperFixture, PropagationForest) {
        let fx = fixtures::paper_running_example();
        let inst = Instance::new(&fx.dtd, &fx.ann, &fx.t0, &fx.s0, fx.alpha.len()).unwrap();
        let sizes = min_sizes(&fx.dtd, fx.alpha.len());
        let pkg = InsertletPackage::new();
        let cm = CostModel {
            sizes: &sizes,
            insertlets: &pkg,
        };
        let forest = PropagationForest::build(&inst, &cm).unwrap();
        (fx, forest)
    }

    #[test]
    fn fig8_graph_for_n6() {
        // G_{n6}: t-children of n6 = (b9, c10); S-children = (c10, c15).
        // Common = {c10}. The paper's drawing has 8 vertices with its
        // 2-state automaton; our Glushkov automaton for ((a+b)·c)* has 4
        // states, so vertex counts are representation-dependent. Invariant:
        // cheapest cost and the optimal operations.
        let (_, forest) = paper_forest();
        let g = forest.graph(NodeId(6)).unwrap();
        assert!(g.n_vertices() > 0);
        // Cheapest: Nop(b9) Nop(c10) Ins(c15-inverse of size 2: c plus one
        // hidden a/b sibling)... — inverse of c#15 under d: fragment "c"
        // needs one invisible (a+b) sibling → inverse size 2.
        assert_eq!(forest.cost(NodeId(6)), Some(2));
    }

    #[test]
    fn fig10_root_graph_cost() {
        // The paper's optimal propagation (Fig. 7) has cost 14.
        let (_, forest) = paper_forest();
        assert_eq!(forest.cost(NodeId(0)), Some(14));
    }

    #[test]
    fn leaf_preserved_nodes_have_trivial_graphs() {
        // n4 (label a) has no children on either side.
        let (_, forest) = paper_forest();
        let g = forest.graph(NodeId(4)).unwrap();
        assert_eq!(forest.cost(NodeId(4)), Some(0));
        assert_eq!(g.best_cost(), Some(0));
    }

    #[test]
    fn optimal_subgraphs_are_acyclic() {
        let (_, forest) = paper_forest();
        for (n, g) in forest.graphs() {
            let opt = g.optimal_subgraph().unwrap_or_else(|| {
                panic!("node {n} has no propagation path");
            });
            assert!(opt.is_acyclic(), "G*_{n} must be acyclic");
        }
    }

    #[test]
    fn paper_full_graphs_are_acyclic_for_d0() {
        // D0 has no pumpable invisible letters ((b+c) occurs exactly once
        // per group), so even the *full* graphs happen to be acyclic here.
        let (_, forest) = paper_forest();
        assert!(forest.graph(NodeId(0)).unwrap().is_acyclic());
    }

    #[test]
    fn pumpable_invisible_letters_create_cycles() {
        // D1: r → (a·b*)* with b hidden (the paper's infinitely-many-
        // propagations example): Ins(b) loops make the full graph cyclic,
        // while the optimal subgraph stays acyclic.
        use xvu_dtd::parse_dtd;
        use xvu_edit::parse_script;
        use xvu_tree::{parse_term_with_ids, Alphabet, NodeIdGen};
        use xvu_view::parse_annotation;

        let mut alpha = Alphabet::new();
        let dtd = parse_dtd(&mut alpha, "r -> (a.b*)*").unwrap();
        let ann = parse_annotation(&mut alpha, "hide r b").unwrap();
        let mut gen = NodeIdGen::new();
        let source = parse_term_with_ids(&mut alpha, &mut gen, "r#0(a#1)").unwrap();
        let update = parse_script(&mut alpha, "nop:r#0(nop:a#1, ins:a#2)").unwrap();
        let inst = Instance::new(&dtd, &ann, &source, &update, alpha.len()).unwrap();
        let sizes = min_sizes(&dtd, alpha.len());
        let pkg = InsertletPackage::new();
        let cm = CostModel {
            sizes: &sizes,
            insertlets: &pkg,
        };
        let forest = PropagationForest::build(&inst, &cm).unwrap();
        let g = forest.graph(NodeId(0)).unwrap();
        assert!(!g.is_acyclic(), "Ins(b) pumping must create cycles");
        let opt = g.optimal_subgraph().unwrap();
        assert!(opt.is_acyclic());
        // optimal: just insert the a — no b padding needed
        assert_eq!(forest.optimal_cost(), 1);
    }

    #[test]
    fn type_preservation_marks_exist() {
        let (_, forest) = paper_forest();
        let g = forest.graph(NodeId(0)).unwrap();
        let mut preserved = 0;
        let mut nop_edges = 0;
        for (_, e) in g.edges() {
            if let PropEdge::NopVisible { preserves_type, .. }
            | PropEdge::NopInvisible { preserves_type, .. } = e.payload
            {
                nop_edges += 1;
                if preserves_type {
                    preserved += 1;
                }
            }
        }
        assert!(nop_edges > 0);
        assert!(
            preserved > 0,
            "D0 automata are deterministic; typing applies"
        );
    }

    use xvu_tree::NodeId;
}
