//! View-update problem instances.
//!
//! An instance bundles the paper's inputs — DTD `D`, annotation `A`,
//! source document `t ∈ L(D)`, and view update `S` — together with the
//! derived artefacts every stage needs (the view `A(t)`, the visible-node
//! set, the view DTD), and validates all of the paper's well-formedness
//! requirements up front:
//!
//! 1. `t ∈ L(D)`;
//! 2. `S` is a well-formed editing script with `In(S) = A(t)`;
//! 3. `Out(S)` satisfies the view DTD (i.e. `Out(S) ∈ A(L(D))`, checked
//!    structurally via the derived DTD);
//! 4. `N_S ∩ (N_t \ N_{A(t)}) = ∅` — the update never reuses hidden
//!    identifiers;
//! 5. every label inserted by `S` is visible under its parent (a
//!    consequence of 3 made into a direct check for better diagnostics).

use crate::error::PropagateError;
use std::borrow::Cow;
use std::collections::HashSet;
use xvu_dtd::Dtd;
use xvu_edit::{check_is_update_of, output_tree, EditError, EditOp, Script};
use xvu_tree::{DocTree, NodeId, NodeIdGen};
use xvu_view::{derive_view_dtd, extract_view, visible_nodes, Annotation};

/// The update-independent artefacts derived from one source document
/// under a fixed annotation: the view, the visible/hidden identifier
/// sets, and a fresh-identifier generator already positioned past every
/// source identifier.
///
/// [`Instance::new`] computes one per call; a [`crate::Session`] computes
/// it once per document and reuses it across updates.
#[derive(Clone, Debug)]
pub(crate) struct Prepared {
    /// The materialised view `A(t)`.
    pub view: DocTree,
    /// Identifiers of the visible nodes of `t`.
    pub visible: HashSet<NodeId>,
    /// Identifiers of the hidden nodes of `t` (`N_t \ N_{A(t)}`).
    pub hidden: HashSet<NodeId>,
    /// Generator positioned past every identifier of `t`.
    pub gen: NodeIdGen,
}

impl Prepared {
    /// Extracts the view and identifier sets of `source` under `ann`.
    pub(crate) fn from_source(ann: &Annotation, source: &DocTree) -> Prepared {
        let view = extract_view(ann, source);
        let visible = visible_nodes(ann, source);
        let mut hidden = HashSet::new();
        let mut gen = NodeIdGen::new();
        for id in source.node_ids() {
            gen.bump_past(id);
            if !visible.contains(&id) {
                hidden.insert(id);
            }
        }
        Prepared {
            view,
            visible,
            hidden,
            gen,
        }
    }
}

/// A validated view-update problem instance.
#[derive(Clone, Debug)]
pub struct Instance<'a> {
    /// The document schema `D`.
    pub dtd: &'a Dtd,
    /// The view definition `A`.
    pub ann: &'a Annotation,
    /// The source document `t`.
    pub source: &'a DocTree,
    /// The user's view update `S`.
    pub update: &'a Script,
    /// Alphabet size (for symbol-indexed tables).
    pub alphabet_len: usize,
    /// The materialised view `A(t)` (= `In(S)`) — owned by one-shot
    /// instances, borrowed from the session cache by session-built ones.
    pub view: Cow<'a, DocTree>,
    /// Identifiers of the visible nodes of `t` (owned or session-cached,
    /// like [`Instance::view`]).
    pub visible: Cow<'a, HashSet<NodeId>>,
    /// The updated view `Out(S)`.
    pub updated_view: DocTree,
    /// The derived view DTD capturing `A(L(D))` — owned by one-shot
    /// instances, borrowed from the engine's precompiled copy by
    /// session-built ones.
    pub view_dtd: Cow<'a, Dtd>,
    /// Generator positioned past every source/update identifier, computed
    /// once at construction so [`Instance::id_gen`] is O(1).
    gen0: NodeIdGen,
}

impl<'a> Instance<'a> {
    /// Validates and assembles an instance.
    pub fn new(
        dtd: &'a Dtd,
        ann: &'a Annotation,
        source: &'a DocTree,
        update: &'a Script,
        alphabet_len: usize,
    ) -> Result<Instance<'a>, PropagateError> {
        dtd.validate(source)
            .map_err(PropagateError::SourceNotValid)?;
        let Prepared {
            view,
            visible,
            hidden,
            gen,
        } = Prepared::from_source(ann, source);
        let view_dtd = Cow::Owned(derive_view_dtd(dtd, ann, alphabet_len));
        Instance::from_parts(
            dtd,
            ann,
            source,
            update,
            alphabet_len,
            Cow::Owned(view),
            Cow::Owned(visible),
            &hidden,
            gen,
            view_dtd,
        )
    }

    /// Assembles an instance from precomputed source artefacts, running
    /// only the *update-dependent* checks (requirements 2–5 of the module
    /// docs). The caller guarantees requirement 1 (`t ∈ L(D)`) and that
    /// the artefacts genuinely belong to `(dtd, ann, source)`; sessions
    /// pass their caches borrowed so assembly copies nothing
    /// document-sized.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        dtd: &'a Dtd,
        ann: &'a Annotation,
        source: &'a DocTree,
        update: &'a Script,
        alphabet_len: usize,
        view: Cow<'a, DocTree>,
        visible: Cow<'a, HashSet<NodeId>>,
        hidden: &HashSet<NodeId>,
        mut gen: NodeIdGen,
        view_dtd: Cow<'a, Dtd>,
    ) -> Result<Instance<'a>, PropagateError> {
        check_is_update_of(update, &view)?;

        for id in update.node_ids() {
            if hidden.contains(&id) {
                return Err(PropagateError::Edit(EditError::HiddenIdUsed(id)));
            }
            gen.bump_past(id);
        }

        let updated_view = output_tree(update).ok_or_else(|| {
            PropagateError::InvalidInstance("update deletes the view root".to_owned())
        })?;

        if let Some(v) = view_dtd.first_violation(&updated_view) {
            return Err(PropagateError::OutputNotAView(format!(
                "node {} (child word not derivable in any view)",
                v.node
            )));
        }

        // Inserted labels must be visible under their parents.
        for n in update.preorder() {
            let parent_label = update.label(n).label;
            for &c in update.children(n) {
                let cl = update.label(c);
                if cl.op == EditOp::Ins
                    && update.label(n).op != EditOp::Ins
                    && !ann.is_visible(parent_label, cl.label)
                {
                    return Err(PropagateError::InsertedInvisibleLabel { node: c });
                }
            }
        }

        Ok(Instance {
            dtd,
            ann,
            source,
            update,
            alphabet_len,
            view,
            visible,
            updated_view,
            view_dtd,
            gen0: gen,
        })
    }

    /// A fresh-identifier generator positioned beyond every identifier used
    /// by the source document or the update (cached at construction).
    pub fn id_gen(&self) -> NodeIdGen {
        self.gen0.clone()
    }

    /// The preserved view nodes `N_Δ` (the `Nop` nodes of `S`), in
    /// pre-order. These are exactly the nodes for which propagation graphs
    /// are built; the root of `S` is always first.
    pub fn n_delta(&self) -> Vec<NodeId> {
        self.update
            .preorder()
            .filter(|&n| self.update.label(n).op == EditOp::Nop)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use xvu_edit::parse_script;
    use xvu_tree::parse_term_with_ids;

    #[test]
    fn paper_instance_validates() {
        let fx = fixtures::paper_running_example();
        let inst = Instance::new(&fx.dtd, &fx.ann, &fx.t0, &fx.s0, fx.alpha.len()).unwrap();
        assert_eq!(inst.view.size(), 7);
        assert_eq!(inst.updated_view.size(), 9);
        // N_Δ = {n0, n4, n6, n10}
        let nd: Vec<u64> = inst.n_delta().iter().map(|n| n.0).collect();
        assert_eq!(nd, vec![0, 4, 6, 10]);
    }

    #[test]
    fn invalid_source_is_rejected() {
        let mut fx = fixtures::paper_running_example();
        // break the source: delete the trailing d sibling group
        let mut gen = fx.gen.clone();
        let bad = parse_term_with_ids(&mut fx.alpha, &mut gen, "r#100(a#101, b#102)").unwrap();
        let s = parse_script(&mut fx.alpha, "nop:r#100(nop:a#101)").unwrap();
        let err = Instance::new(&fx.dtd, &fx.ann, &bad, &s, fx.alpha.len()).unwrap_err();
        assert!(matches!(err, PropagateError::SourceNotValid(_)));
    }

    #[test]
    fn update_of_wrong_view_is_rejected() {
        let mut fx = fixtures::paper_running_example();
        let s = parse_script(&mut fx.alpha, "nop:r#0(nop:a#1)").unwrap();
        let err = Instance::new(&fx.dtd, &fx.ann, &fx.t0, &s, fx.alpha.len()).unwrap_err();
        assert!(matches!(err, PropagateError::Edit(_)));
    }

    #[test]
    fn hidden_id_reuse_is_rejected() {
        let mut fx = fixtures::paper_running_example();
        // node 2 (the b) and node 7 (a under d3) are hidden in t0; reuse 7
        let s = parse_script(
            &mut fx.alpha,
            "nop:r#0(nop:a#1, nop:d#3(nop:c#8), nop:a#4, ins:d#7, nop:d#6(nop:c#10))",
        )
        .unwrap();
        let err = Instance::new(&fx.dtd, &fx.ann, &fx.t0, &s, fx.alpha.len()).unwrap_err();
        assert!(matches!(
            err,
            PropagateError::Edit(xvu_edit::EditError::HiddenIdUsed(NodeId(7)))
        ));
    }

    #[test]
    fn non_view_output_is_rejected() {
        let mut fx = fixtures::paper_running_example();
        // delete a1 only: view word becomes d a d — not in (a·d)*
        let s = parse_script(
            &mut fx.alpha,
            "nop:r#0(del:a#1, nop:d#3(nop:c#8), nop:a#4, nop:d#6(nop:c#10))",
        )
        .unwrap();
        let err = Instance::new(&fx.dtd, &fx.ann, &fx.t0, &s, fx.alpha.len()).unwrap_err();
        assert!(matches!(err, PropagateError::OutputNotAView(_)));
    }

    #[test]
    fn inserting_invisible_label_is_rejected() {
        let mut fx = fixtures::paper_running_example();
        // b is invisible under r; inserting it can never appear in a view.
        let s = parse_script(
            &mut fx.alpha,
            "nop:r#0(nop:a#1, nop:d#3(nop:c#8), nop:a#4, nop:d#6(nop:c#10), ins:b#50)",
        )
        .unwrap();
        let err = Instance::new(&fx.dtd, &fx.ann, &fx.t0, &s, fx.alpha.len()).unwrap_err();
        // caught either as a non-view output or as the direct check,
        // whichever fires first — both are acceptable diagnoses.
        assert!(matches!(
            err,
            PropagateError::OutputNotAView(_) | PropagateError::InsertedInvisibleLabel { .. }
        ));
    }

    #[test]
    fn id_gen_clears_all_used_ids() {
        let fx = fixtures::paper_running_example();
        let inst = Instance::new(&fx.dtd, &fx.ann, &fx.t0, &fx.s0, fx.alpha.len()).unwrap();
        let mut gen = inst.id_gen();
        let fresh = gen.fresh();
        assert!(!fx.t0.contains(fresh));
        assert!(!fx.s0.contains(fresh));
    }
}
