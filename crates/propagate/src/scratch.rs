//! Reusable propagation scratch arenas.
//!
//! The propagation kernel — graph construction ([`crate::build_prop_graph`]),
//! the Dijkstra family on [`crate::pathgraph::PathGraph`], and the segment
//! decomposition ([`crate::Segmentation`]) — used to heap-allocate its
//! working state afresh on every query. A [`PropScratch`] pools all of it:
//! buffers are cleared, never freed, between uses, so a warm kernel runs
//! without transient allocation (pinned by the `alloc_budget` regression
//! test in `crates/bench/tests`).
//!
//! # Ownership and threading rules
//!
//! * One `PropScratch` per [`crate::Session`] (behind its own mutex,
//!   disjoint from the memo cache), reused across all propagations of the
//!   session and across all nodes within one propagation.
//! * One per worker thread in [`crate::Engine::propagate_batch`] — scratch
//!   is never shared between threads; it is `Send` but deliberately not
//!   pooled globally.
//! * One-shot entry points ([`crate::propagate`]) create a private scratch
//!   per call, which still amortises across every node of that propagation.
//!
//! Scratch is pure working memory: no query result may alias it, so reuse
//! across documents cannot leak state between propagations (a dedicated
//! cross-document test pins this).

use crate::pathgraph::GraphScratch;
use crate::segments::SegBufs;

/// Pooled working memory for the propagation kernel. See the module docs
/// for ownership and threading rules.
#[derive(Debug, Default)]
pub struct PropScratch {
    /// Dijkstra / shortest-path state shared by every graph query.
    pub(crate) graph: GraphScratch,
    /// Segment-decomposition buffers ([`crate::Segmentation`]).
    pub(crate) seg: SegBufs,
    /// Aligned `(i, j)` vertex-block pairs of the node under construction.
    pub(crate) pairs: Vec<(u32, u32)>,
    /// Per-row vertex-interning tables of `build_prop_graph`.
    pub(crate) row_base: Vec<u32>,
    pub(crate) row_j0: Vec<u32>,
    pub(crate) row_seen: Vec<bool>,
}

impl PropScratch {
    /// An empty scratch; buffers grow on first use and are then reused.
    pub fn new() -> PropScratch {
        PropScratch::default()
    }

    /// Split into the graph-query scratch and the construction buffers
    /// (callers often need both at once on disjoint borrows).
    pub(crate) fn graph_mut(&mut self) -> &mut GraphScratch {
        &mut self.graph
    }
}
