//! Counting optimal propagations (paper §4, "Further results").
//!
//! The optimal graphs are acyclic, so the number of optimal propagations
//! is finite with an exponential upper bound — and the bound is tight: for
//! `D2: r → (a·(b+c))*` with `b, c` hidden, inserting `k` nodes labeled
//! `a` admits exactly `2^k` optimal propagations (each inserted `a`
//! independently needs one hidden `b` or `c`).
//!
//! Counts multiply through the recursive structure: a (vi)-edge
//! contributes the count of the child's graph, a (iv)-edge the number of
//! minimal inverses of the inserted fragment. Counts are path counts;
//! when content models are deterministic (the W3C-required case) paths
//! correspond one-to-one with propagations up to the choice of concrete
//! minimal fragments.

use crate::forest::PropagationForest;
use crate::graph::PropEdge;
use xvu_tree::NodeId;

/// Counts the cost-minimal propagations captured by `G*` (saturating
/// `u128`).
pub fn count_optimal_propagations(forest: &PropagationForest) -> u128 {
    count_node(forest, forest.root)
}

fn count_node(forest: &PropagationForest, n: NodeId) -> u128 {
    let Some(opt) = forest.graphs[&n].optimal_subgraph() else {
        return 0;
    };
    opt.count_paths(|e| match e {
        PropEdge::InsVisible { child } => forest.inversions[child].count_min_inverses(),
        PropEdge::NopVisible { child, .. } => count_node(forest, *child),
        _ => 1,
    })
    .expect("optimal propagation graphs are acyclic")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::fixtures;
    use crate::instance::Instance;
    use xvu_dtd::{min_sizes, parse_dtd, InsertletPackage};
    use xvu_edit::parse_script;
    use xvu_tree::{parse_term_with_ids, Alphabet, NodeIdGen};
    use xvu_view::parse_annotation;

    #[test]
    fn d2_family_counts_two_to_the_k() {
        // D2: r → (a·(b+c))*, A2 hides b and c under r. Source: r (empty).
        // Update: insert k a-children. Optimal propagations: 2^k.
        for k in [1usize, 2, 3, 5, 8, 10] {
            let mut alpha = Alphabet::new();
            let dtd = parse_dtd(&mut alpha, "r -> (a.(b+c))*").unwrap();
            let ann = parse_annotation(&mut alpha, "hide r b\nhide r c").unwrap();
            let mut gen = NodeIdGen::new();
            let source = parse_term_with_ids(&mut alpha, &mut gen, "r#0").unwrap();
            let mut s = String::from("nop:r#0(");
            for i in 0..k {
                if i > 0 {
                    s.push_str(", ");
                }
                s.push_str(&format!("ins:a#{}", i + 1));
            }
            s.push(')');
            let update = parse_script(&mut alpha, &s).unwrap();
            let inst = Instance::new(&dtd, &ann, &source, &update, alpha.len()).unwrap();
            let sizes = min_sizes(&dtd, alpha.len());
            let pkg = InsertletPackage::new();
            let cm = CostModel {
                sizes: &sizes,
                insertlets: &pkg,
            };
            let forest = crate::forest::PropagationForest::build(&inst, &cm).unwrap();
            assert_eq!(count_optimal_propagations(&forest), 1u128 << k, "k = {k}");
            // each inserted a costs itself + one hidden sibling
            assert_eq!(forest.optimal_cost(), 2 * k as u64);
        }
    }

    #[test]
    fn paper_example_count_is_positive_and_finite() {
        let fx = fixtures::paper_running_example();
        let inst = Instance::new(&fx.dtd, &fx.ann, &fx.t0, &fx.s0, fx.alpha.len()).unwrap();
        let sizes = min_sizes(&fx.dtd, fx.alpha.len());
        let pkg = InsertletPackage::new();
        let cm = CostModel {
            sizes: &sizes,
            insertlets: &pkg,
        };
        let forest = crate::forest::PropagationForest::build(&inst, &cm).unwrap();
        let count = count_optimal_propagations(&forest);
        // d#11's inverse: 2 choices (a/b) × 2 positions = 4; the c#15
        // insert under d6 has 2 (a or b sibling); root path is unique in
        // its optimal ops but padding choices multiply.
        assert!(count >= 8, "count = {count}");
        assert!(count < 1_000, "count = {count}");
    }

    #[test]
    fn identity_update_has_exactly_one_propagation() {
        let fx = fixtures::paper_running_example();
        let view = xvu_view::extract_view(&fx.ann, &fx.t0);
        let s = xvu_edit::nop_script(&view);
        let inst = Instance::new(&fx.dtd, &fx.ann, &fx.t0, &s, fx.alpha.len()).unwrap();
        let sizes = min_sizes(&fx.dtd, fx.alpha.len());
        let pkg = InsertletPackage::new();
        let cm = CostModel {
            sizes: &sizes,
            insertlets: &pkg,
        };
        let forest = crate::forest::PropagationForest::build(&inst, &cm).unwrap();
        assert_eq!(count_optimal_propagations(&forest), 1);
    }
}
