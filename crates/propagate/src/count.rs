//! Counting optimal propagations (paper §4, "Further results").
//!
//! The optimal graphs are acyclic, so the number of optimal propagations
//! is finite with an exponential upper bound — and the bound is tight: for
//! `D2: r → (a·(b+c))*` with `b, c` hidden, inserting `k` nodes labeled
//! `a` admits exactly `2^k` optimal propagations (each inserted `a`
//! independently needs one hidden `b` or `c`).
//!
//! Counts multiply through the recursive structure: a (vi)-edge
//! contributes the count of the child's graph, a (iv)-edge the number of
//! minimal inverses of the inserted fragment. Counts are path counts;
//! when content models are deterministic (the W3C-required case) paths
//! correspond one-to-one with propagations up to the choice of concrete
//! minimal fragments.

use crate::forest::PropagationForest;
use crate::graph::PropEdge;
use crate::pathgraph::GraphScratch;
use xvu_tree::NodeId;

/// Counts the cost-minimal propagations captured by `G*` (saturating
/// `u128`).
///
/// Returns `None` when the forest admits **no propagation at all** — some
/// reachable graph has no start→goal path (so there is nothing to count),
/// or a graph is not acyclic so path counting is undefined. A forest built
/// by [`PropagationForest::build`] always has at least one propagation
/// (Theorem 5), so `None` only arises for hand-assembled or corrupted
/// forests; every `Some` count is ≥ 1. Callers must not conflate `None`
/// with a zero count: `0` is never returned inside `Some`.
pub fn count_optimal_propagations(forest: &PropagationForest) -> Option<u128> {
    // One pooled Dijkstra scratch serves every subgraph extraction of the
    // recursive count.
    count_node(forest, forest.root, &mut GraphScratch::default())
}

fn count_node(forest: &PropagationForest, n: NodeId, scratch: &mut GraphScratch) -> Option<u128> {
    // No optimal subgraph ⇔ no start→goal path ⇔ no propagation of this
    // node's fragment — propagate the absence instead of counting it as 0.
    let opt = forest.graph(n)?.optimal_subgraph_with(scratch)?;
    let mut missing_child = false;
    // `count_paths` is `None` only on cyclic graphs, which optimal
    // subgraphs of well-formed forests never are; surface that as `None`
    // too rather than panicking on corrupted inputs. Positional edges
    // resolve through the forest's child-word snapshots (no instance
    // here); an unresolvable position counts as a missing child, not 0.
    let n_paths = opt.count_paths(|e| match *e {
        // A built forest has ≥ 1 minimal inverse per inserted fragment
        // (`InversionForest::build` errors otherwise); a missing entry or
        // a zero count means the fragment has no inverse, not "0 ways".
        PropEdge::InsVisible { .. } => {
            let inverses = forest
                .resolve_child(n, e)
                .and_then(|child| forest.inversion(child))
                .map(|i| i.count_min_inverses());
            match inverses {
                Some(c) if c > 0 => c,
                _ => {
                    missing_child = true;
                    0
                }
            }
        }
        PropEdge::NopVisible { .. } => forest
            .resolve_child(n, e)
            .and_then(|child| count_node(forest, child, scratch))
            .unwrap_or_else(|| {
                missing_child = true;
                0
            }),
        _ => 1,
    })?;
    if missing_child {
        return None;
    }
    Some(n_paths)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::fixtures;
    use crate::instance::Instance;
    use xvu_dtd::{min_sizes, parse_dtd, InsertletPackage};
    use xvu_edit::parse_script;
    use xvu_tree::{parse_term_with_ids, Alphabet, NodeIdGen};
    use xvu_view::parse_annotation;

    #[test]
    fn d2_family_counts_two_to_the_k() {
        // D2: r → (a·(b+c))*, A2 hides b and c under r. Source: r (empty).
        // Update: insert k a-children. Optimal propagations: 2^k.
        for k in [1usize, 2, 3, 5, 8, 10] {
            let mut alpha = Alphabet::new();
            let dtd = parse_dtd(&mut alpha, "r -> (a.(b+c))*").unwrap();
            let ann = parse_annotation(&mut alpha, "hide r b\nhide r c").unwrap();
            let mut gen = NodeIdGen::new();
            let source = parse_term_with_ids(&mut alpha, &mut gen, "r#0").unwrap();
            let mut s = String::from("nop:r#0(");
            for i in 0..k {
                if i > 0 {
                    s.push_str(", ");
                }
                s.push_str(&format!("ins:a#{}", i + 1));
            }
            s.push(')');
            let update = parse_script(&mut alpha, &s).unwrap();
            let inst = Instance::new(&dtd, &ann, &source, &update, alpha.len()).unwrap();
            let sizes = min_sizes(&dtd, alpha.len());
            let pkg = InsertletPackage::new();
            let cm = CostModel {
                sizes: &sizes,
                insertlets: &pkg,
            };
            let forest = crate::forest::PropagationForest::build(&inst, &cm).unwrap();
            assert_eq!(
                count_optimal_propagations(&forest),
                Some(1u128 << k),
                "k = {k}"
            );
            // each inserted a costs itself + one hidden sibling
            assert_eq!(forest.optimal_cost(), 2 * k as u64);
        }
    }

    #[test]
    fn paper_example_count_is_positive_and_finite() {
        let fx = fixtures::paper_running_example();
        let inst = Instance::new(&fx.dtd, &fx.ann, &fx.t0, &fx.s0, fx.alpha.len()).unwrap();
        let sizes = min_sizes(&fx.dtd, fx.alpha.len());
        let pkg = InsertletPackage::new();
        let cm = CostModel {
            sizes: &sizes,
            insertlets: &pkg,
        };
        let forest = crate::forest::PropagationForest::build(&inst, &cm).unwrap();
        let count = count_optimal_propagations(&forest).expect("the forest has propagations");
        // d#11's inverse: 2 choices (a/b) × 2 positions = 4; the c#15
        // insert under d6 has 2 (a or b sibling); root path is unique in
        // its optimal ops but padding choices multiply.
        assert!(count >= 8, "count = {count}");
        assert!(count < 1_000, "count = {count}");
    }

    #[test]
    fn identity_update_has_exactly_one_propagation() {
        let fx = fixtures::paper_running_example();
        let view = xvu_view::extract_view(&fx.ann, &fx.t0);
        let s = xvu_edit::nop_script(&view);
        let inst = Instance::new(&fx.dtd, &fx.ann, &fx.t0, &s, fx.alpha.len()).unwrap();
        let sizes = min_sizes(&fx.dtd, fx.alpha.len());
        let pkg = InsertletPackage::new();
        let cm = CostModel {
            sizes: &sizes,
            insertlets: &pkg,
        };
        let forest = crate::forest::PropagationForest::build(&inst, &cm).unwrap();
        assert_eq!(count_optimal_propagations(&forest), Some(1));
    }

    #[test]
    fn no_propagation_is_none_not_zero() {
        // Regression: a forest whose root graph has no start→goal path
        // (the "instance has no propagation" shape) must report `None`,
        // not a count of 0 that callers could mistake for a genuine tally.
        let fx = fixtures::paper_running_example();
        let inst = Instance::new(&fx.dtd, &fx.ann, &fx.t0, &fx.s0, fx.alpha.len()).unwrap();
        let sizes = min_sizes(&fx.dtd, fx.alpha.len());
        let pkg = InsertletPackage::new();
        let cm = CostModel {
            sizes: &sizes,
            insertlets: &pkg,
        };
        let mut forest = crate::forest::PropagationForest::build(&inst, &cm).unwrap();
        // Replace the root graph with a goal-less one-vertex graph.
        let root = forest.root;
        let stub = crate::graph::PropGraph::new(
            vec![crate::graph::PropVertex {
                tpos: 0,
                state: xvu_automata::StateId(0),
                spos: 0,
            }],
            0,
        );
        forest.insert_graph(root, stub);
        assert_eq!(count_optimal_propagations(&forest), None);
        // A dangling child reference (graph deleted out from under a
        // (vi)-edge) is also `None`, not a panic and not 0.
        let forest2 = {
            let mut f = crate::forest::PropagationForest::build(&inst, &cm).unwrap();
            let child = f.graphs().map(|(n, _)| n).find(|&n| n != f.root).unwrap();
            f.remove_graph(child);
            f
        };
        assert_eq!(count_optimal_propagations(&forest2), None);
    }

    #[test]
    fn unsatisfiable_update_errors_instead_of_counting_zero() {
        // An update whose only source completion would need an
        // unsatisfiable hidden label: `h -> h` can never be materialised,
        // so no propagation exists. The pipeline must surface an error
        // (at validation or forest construction) — never `Ok(0)`.
        let mut alpha = Alphabet::new();
        let dtd = parse_dtd(&mut alpha, "r -> (a.h)*\nh -> h").unwrap();
        let ann = parse_annotation(&mut alpha, "hide r h").unwrap();
        let mut gen = NodeIdGen::new();
        let source = parse_term_with_ids(&mut alpha, &mut gen, "r#0").unwrap();
        let update = parse_script(&mut alpha, "nop:r#0(ins:a#1)").unwrap();
        let engine = crate::Engine::builder()
            .alphabet(alpha)
            .dtd(dtd)
            .annotation(ann)
            .build()
            .unwrap();
        let session = engine.open(&source).unwrap();
        let err = session
            .count_optimal(&update)
            .expect_err("no propagation can exist");
        // the error names the problem instead of hiding it behind a count
        assert!(
            !err.to_string().is_empty(),
            "error must be user-reportable: {err:?}"
        );
    }
}
