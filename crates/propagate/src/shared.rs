//! The engine-level shared memo cache: fleet-wide reuse of
//! structure-keyed propagation memos.
//!
//! [`crate::PropCache`] (PR 5) memoises per *session*, keyed by document
//! arena slots — so a daemon serving thousands of documents of the same
//! family recomputes identical dynamic programs once per document.
//! [`SharedMemoCache`] is the engine-level tier of that hierarchy: every
//! memo that is a pure function of a subtree's *structure* and the
//! engine's `(Σ, D, A)` context — propagation graphs `G_n` with their
//! cheapest costs, optimal subgraphs `G*_n`, complement restrictions,
//! typing runs — is re-keyed by the subtree's [`InternId`]
//! ([`xvu_tree::Interner`]) and shared across all sessions and documents
//! an [`crate::Engine`] opens.
//!
//! # Keying contract
//!
//! An entry keyed by `InternId` may be stored or served **only** for
//! memos that depend on nothing but the interned subtree and the engine:
//! the session tier enforces this by consulting the shared tier solely
//! for nodes the update's footprint marks *clean* (graphs, optimal
//! subgraphs, complement restrictions — a clean subtree's children are
//! clean, so its (vi)-weights are all zero and no inserted fragment is
//! in sight) plus typing runs for any node (they depend only on the
//! source child word). Since [`crate::PropEdge`] names children
//! positionally rather than by [`xvu_tree::NodeId`], the stored graphs
//! are *identical* to what any other document of the family would build
//! for the same structure — a shared hit is byte-for-byte the graph a
//! local build would produce.
//!
//! # Publication and invalidation
//!
//! Readers never write: sessions buffer freshly built memos locally and
//! publish them in one batch at operation end / commit
//! ([`crate::PropCache`]'s pending buffer). Entries merge
//! first-writer-wins — all writers compute identical values for a key,
//! so the choice is cosmetic. The cache is never invalidated: structural
//! keys cannot go stale (an edited subtree has a *different* intern id),
//! which is also why session eviction in the serving layer retires only
//! session-private state while this tier keeps serving the family.
//!
//! # Concurrency: two candidate designs
//!
//! The read path must not serialize the daemon's workers (the PR 5 cache
//! sits behind a per-session mutex; this tier is shared by *all*
//! workers). Two designs, benchmarked head-to-head in
//! `benches/throughput.rs` (`shared_cache_backends`):
//!
//! * [`SharedCacheBackend::Sharded`] — 16 shards of
//!   `RwLock<HashMap>`; readers take one shard read lock, writers one
//!   shard write lock per touched shard. Readers contend only on
//!   same-shard writes.
//! * [`SharedCacheBackend::Snapshot`] — an epoch-style
//!   `RwLock<Arc<HashMap>>`: readers clone the `Arc` under a read lock
//!   held for nanoseconds and then probe a frozen snapshot with no lock
//!   at all; writers serialize on a mutex, clone-merge the map, and swap
//!   the `Arc`. Reads never block behind a write; publication is O(map).
//!
//! The default is [`SharedCacheBackend::Sharded`]: in the head-to-head
//! it matches Snapshot on warm read throughput (both scale without a
//! global lock) while keeping publication O(batch) instead of O(map) —
//! see `BENCH_propagate.json`.

use crate::cache::TypingRun;
use crate::graph::PropGraph;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use xvu_tree::InternId;

/// One interned structure's worth of shared memos (the engine-tier
/// mirror of the session cache's per-slot entry).
#[derive(Clone, Debug, Default)]
pub(crate) struct SharedEntry {
    /// `G_n` and its cheapest path cost (always 0 for clean nodes).
    pub(crate) graph: Option<(Arc<PropGraph>, u64)>,
    /// The optimal subgraph `G*_n`.
    pub(crate) opt: Option<Arc<PropGraph>>,
    /// The complement-preserving restriction of `G_n`.
    pub(crate) complement: Option<Arc<PropGraph>>,
    /// The typing run over the structure's child word.
    pub(crate) run: Option<TypingRun>,
}

impl SharedEntry {
    /// First-writer-wins merge: every writer computes identical values
    /// for a given key, so keeping the incumbent is deterministic.
    fn absorb(&mut self, new: SharedEntry) {
        if self.graph.is_none() {
            self.graph = new.graph;
        }
        if self.opt.is_none() {
            self.opt = new.opt;
        }
        if self.complement.is_none() {
            self.complement = new.complement;
        }
        if self.run.is_none() {
            self.run = new.run;
        }
    }
}

/// The concurrency-control design of a [`SharedMemoCache`] — see the
/// [module docs](self) for the two candidates and the head-to-head.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SharedCacheBackend {
    /// 16-way sharded `RwLock<HashMap>`: per-shard read/write locks.
    #[default]
    Sharded,
    /// Snapshot/epoch swap: lock-free reads over a frozen `Arc<HashMap>`
    /// snapshot, serialized clone-merge-swap writers.
    Snapshot,
}

/// Fleet-wide counters of a [`SharedMemoCache`], aggregated over every
/// session of the engine.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SharedCacheStats {
    /// Lookups (any artefact kind) answered from the shared tier.
    pub hits: u64,
    /// Lookups that found no shared entry for the structure.
    pub misses: u64,
    /// Entries published by session flush batches.
    pub published: u64,
    /// Distinct interned structures currently held.
    pub entries: usize,
}

impl SharedCacheStats {
    /// Fraction of shared lookups served from the cache (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

const SHARD_COUNT: usize = 16;

#[derive(Debug)]
enum Table {
    Sharded(Vec<RwLock<HashMap<InternId, SharedEntry>>>),
    Snapshot {
        /// The read path: swap-published frozen map.
        snap: RwLock<Arc<HashMap<InternId, SharedEntry>>>,
        /// Serializes writers (clone → merge → swap).
        writer: Mutex<()>,
    },
}

/// The engine-owned shared memo cache. See the [module docs](self) for
/// the keying, publication, and concurrency contracts.
#[derive(Debug)]
pub struct SharedMemoCache {
    table: Table,
    hits: AtomicU64,
    misses: AtomicU64,
    published: AtomicU64,
}

impl SharedMemoCache {
    /// An empty cache over the chosen backend.
    pub fn new(backend: SharedCacheBackend) -> SharedMemoCache {
        let table = match backend {
            SharedCacheBackend::Sharded => Table::Sharded(
                (0..SHARD_COUNT)
                    .map(|_| RwLock::new(HashMap::new()))
                    .collect(),
            ),
            SharedCacheBackend::Snapshot => Table::Snapshot {
                snap: RwLock::new(Arc::new(HashMap::new())),
                writer: Mutex::new(()),
            },
        };
        SharedMemoCache {
            table,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            published: AtomicU64::new(0),
        }
    }

    /// Which backend this cache runs on.
    pub fn backend(&self) -> SharedCacheBackend {
        match self.table {
            Table::Sharded(_) => SharedCacheBackend::Sharded,
            Table::Snapshot { .. } => SharedCacheBackend::Snapshot,
        }
    }

    fn shard(id: InternId) -> usize {
        // Intern ids are dense allocation counters: low bits spread well.
        (id.get() as usize) % SHARD_COUNT
    }

    /// The entry for `id`, if any (clones the entry — all payloads are
    /// `Arc`s, so this is pointer-sized work). Does not count the lookup:
    /// the session tier calls [`SharedMemoCache::record_lookup`] with the
    /// *artefact-level* outcome, so an entry that exists but lacks the
    /// requested artefact still tallies as a miss.
    pub(crate) fn get(&self, id: InternId) -> Option<SharedEntry> {
        match &self.table {
            Table::Sharded(shards) => shards[Self::shard(id)]
                .read()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .get(&id)
                .cloned(),
            Table::Snapshot { snap, .. } => {
                let frozen = Arc::clone(
                    &snap
                        .read()
                        .unwrap_or_else(std::sync::PoisonError::into_inner),
                );
                // Lock released; probe the frozen snapshot lock-free.
                frozen.get(&id).cloned()
            }
        }
    }

    /// Tallies one artefact-level lookup outcome into the fleet-wide
    /// counters.
    pub(crate) fn record_lookup(&self, hit: bool) {
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Publishes a session's pending batch, merging first-writer-wins.
    pub(crate) fn publish(&self, batch: HashMap<InternId, SharedEntry>) {
        if batch.is_empty() {
            return;
        }
        self.published
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        match &self.table {
            Table::Sharded(shards) => {
                for (id, entry) in batch {
                    let mut shard = shards[Self::shard(id)]
                        .write()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    shard.entry(id).or_default().absorb(entry);
                }
            }
            Table::Snapshot { snap, writer } => {
                let _serialized = writer
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                let current = Arc::clone(
                    &snap
                        .read()
                        .unwrap_or_else(std::sync::PoisonError::into_inner),
                );
                let mut next: HashMap<InternId, SharedEntry> = (*current).clone();
                for (id, entry) in batch {
                    next.entry(id).or_default().absorb(entry);
                }
                *snap
                    .write()
                    .unwrap_or_else(std::sync::PoisonError::into_inner) = Arc::new(next);
            }
        }
    }

    /// Distinct interned structures currently held.
    pub fn len(&self) -> usize {
        match &self.table {
            Table::Sharded(shards) => shards
                .iter()
                .map(|s| {
                    s.read()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .len()
                })
                .sum(),
            Table::Snapshot { snap, .. } => snap
                .read()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .len(),
        }
    }

    /// Whether no structure has been published yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fleet-wide counters (hits/misses across every session plus the
    /// publication tally and current size).
    pub fn stats(&self) -> SharedCacheStats {
        SharedCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            published: self.published.load(Ordering::Relaxed),
            entries: self.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::PropVertex;
    use crate::pathgraph::PathGraph;
    use xvu_automata::StateId;
    use xvu_tree::{Alphabet, Interner};

    fn stub_graph(cost: u64) -> Arc<PropGraph> {
        let mut g: PropGraph = PathGraph::new(
            vec![PropVertex {
                tpos: 0,
                state: StateId(0),
                spos: 0,
            }],
            0,
        );
        g.set_goal(0);
        let _ = cost;
        Arc::new(g)
    }

    fn ids(n: usize) -> Vec<InternId> {
        let mut alpha = Alphabet::new();
        let interner = Interner::new();
        let mut prev: Vec<InternId> = Vec::new();
        (0..n)
            .map(|i| {
                let s = alpha.intern(&format!("x{i}"));
                let id = interner.intern(s, &prev);
                prev = vec![id];
                id
            })
            .collect()
    }

    #[test]
    fn both_backends_roundtrip_and_count() {
        for backend in [SharedCacheBackend::Sharded, SharedCacheBackend::Snapshot] {
            let cache = SharedMemoCache::new(backend);
            assert_eq!(cache.backend(), backend);
            let keys = ids(3);
            let cold = cache.get(keys[0]);
            cache.record_lookup(cold.is_some());
            assert!(cold.is_none(), "{backend:?}: cold miss");
            let mut batch = HashMap::new();
            for &k in &keys {
                batch.insert(
                    k,
                    SharedEntry {
                        graph: Some((stub_graph(0), 0)),
                        ..SharedEntry::default()
                    },
                );
            }
            cache.publish(batch);
            for &k in &keys {
                let e = cache.get(k);
                cache.record_lookup(e.is_some());
                assert!(e.expect("published entry is served").graph.is_some());
            }
            let s = cache.stats();
            assert_eq!((s.hits, s.misses, s.published, s.entries), (3, 1, 3, 3));
            assert!(s.hit_rate() > 0.7);
        }
    }

    #[test]
    fn merge_is_first_writer_wins_per_field() {
        for backend in [SharedCacheBackend::Sharded, SharedCacheBackend::Snapshot] {
            let cache = SharedMemoCache::new(backend);
            let k = ids(1)[0];
            let g1 = stub_graph(0);
            let mut b1 = HashMap::new();
            b1.insert(
                k,
                SharedEntry {
                    graph: Some((Arc::clone(&g1), 7)),
                    ..SharedEntry::default()
                },
            );
            cache.publish(b1);
            // A second batch for the same key: the graph field keeps the
            // incumbent, the missing opt field is filled in.
            let mut b2 = HashMap::new();
            b2.insert(
                k,
                SharedEntry {
                    graph: Some((stub_graph(0), 99)),
                    opt: Some(stub_graph(0)),
                    ..SharedEntry::default()
                },
            );
            cache.publish(b2);
            let e = cache.get(k).unwrap();
            assert_eq!(e.graph.as_ref().unwrap().1, 7, "{backend:?}: first wins");
            assert!(e.opt.is_some(), "{backend:?}: gaps are filled");
            assert_eq!(cache.len(), 1);
        }
    }

    #[test]
    fn concurrent_readers_and_writers_stay_coherent() {
        for backend in [SharedCacheBackend::Sharded, SharedCacheBackend::Snapshot] {
            let cache = Arc::new(SharedMemoCache::new(backend));
            let keys = Arc::new(ids(64));
            let writers: Vec<_> = (0..4)
                .map(|w| {
                    let cache = Arc::clone(&cache);
                    let keys = Arc::clone(&keys);
                    std::thread::spawn(move || {
                        for (i, &k) in keys.iter().enumerate() {
                            if i % 4 == w {
                                let mut batch = HashMap::new();
                                batch.insert(
                                    k,
                                    SharedEntry {
                                        graph: Some((stub_graph(0), i as u64)),
                                        ..SharedEntry::default()
                                    },
                                );
                                cache.publish(batch);
                            } else {
                                // readers interleave with writers
                                let _ = cache.get(k);
                            }
                        }
                    })
                })
                .collect();
            for h in writers {
                h.join().unwrap();
            }
            assert_eq!(cache.len(), 64, "{backend:?}: every key published once");
            for (i, &k) in keys.iter().enumerate() {
                let e = cache.get(k).expect("published");
                assert_eq!(e.graph.as_ref().unwrap().1, i as u64, "{backend:?}");
            }
        }
    }
}
