//! Inversion graphs (paper §3).
//!
//! Given a view tree `t'`, the inversion problem asks for source documents
//! `t ∈ L(D)` with `A(t) = t'`. For every node `n` of `t'` with label `x`
//! and children `m_1 … m_k`, the **inversion graph** `H_n` has vertices
//! `{c_0, m_1, …, m_k} × Q` (positions between visible children × states
//! of `D(x)`) and two edge kinds:
//!
//! * **(i) `Ins(y)`** — stay at the same position, take a `q --y--> q'`
//!   transition on an *invisible* `y` (`A(x,y)=0`): pad the source with a
//!   fresh `y`-rooted fragment. Weight: the fragment's charge.
//! * **(ii) `Rec(i)`** — advance from position `i−1` to `i`, taking a
//!   transition on the *visible* label of `m_i`: keep the visible child,
//!   inverting it recursively. Weight: the cheapest inversion cost of
//!   `H_{m_i}` (computed bottom-up).
//!
//! An *inversion path* runs from `(c_0, q_0)` to `(m_k, q)` with `q ∈ F`.
//! Theorem 1: paths (with a choice of fragments for (i)-edges) capture
//! exactly `Inv(L(D), A, t')`. Theorem 2: cheapest paths capture exactly
//! the size-minimal inverses `Inv_min`; the optimal subgraphs `H*` are
//! acyclic.

use crate::cost::CostModel;
use crate::error::PropagateError;
use crate::pathgraph::PathGraph;
use crate::scratch::PropScratch;
use crate::selection::{Classify, EdgeClass, Selector};
use xvu_automata::StateId;
use xvu_dtd::Dtd;
use xvu_tree::{DocTree, NodeId, NodeIdGen, Slot, SlotMap, Sym, Tree};
use xvu_view::Annotation;

/// A vertex of an inversion graph: a position among the visible children
/// (`0` = the artificial `c_0`) and a content-model state.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct InvVertex {
    /// Position: `0..=k` where `k` is the number of children of `n` in the
    /// view.
    pub pos: u32,
    /// The automaton state of `D(λ(n))`.
    pub state: StateId,
}

/// An edge of an inversion graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InvEdge {
    /// (i): insert a fresh invisible `y`-fragment.
    Ins(Sym),
    /// (ii): keep visible child `m_i`, inverted recursively.
    Rec {
        /// The 1-based child index `i`.
        index: u32,
        /// The child node `m_i`.
        child: NodeId,
    },
}

impl Classify for InvEdge {
    fn class(&self) -> EdgeClass {
        match self {
            InvEdge::Ins(_) => EdgeClass::Insert,
            InvEdge::Rec { .. } => EdgeClass::Keep,
        }
    }
    fn tie_break(&self) -> u64 {
        match self {
            InvEdge::Ins(y) => y.index() as u64,
            InvEdge::Rec { .. } => 0,
        }
    }
    fn preserves_type(&self) -> bool {
        false
    }
}

/// The inversion graph of a single view node.
pub type InvGraph = PathGraph<InvVertex, InvEdge>;

/// The collection `H(D, A, t')`: one inversion graph per node of the view
/// fragment, with memoised cheapest inversion costs.
///
/// Graphs and costs are dense tables keyed by the fragment's arena slots;
/// the owned fragment resolves identifiers, so the forest needs no
/// hash-keyed state at all.
#[derive(Clone, Debug)]
pub struct InversionForest {
    /// The view fragment being inverted (owned copy).
    pub fragment: DocTree,
    /// Per-node inversion graphs, keyed by fragment slot.
    graphs: SlotMap<InvGraph>,
    /// Per-node cheapest inversion-path cost (invisible nodes added within
    /// that node's subtree), keyed by fragment slot.
    costs: SlotMap<u64>,
}

impl InversionForest {
    /// Builds `H(D, A, fragment)` bottom-up. Fails with
    /// [`PropagateError::InversionImpossible`] at the shallowest node whose
    /// children admit no completion — i.e. when `fragment ∉ A(L(D))`.
    pub fn build(
        dtd: &Dtd,
        ann: &Annotation,
        fragment: &DocTree,
        cost: &CostModel<'_>,
    ) -> Result<InversionForest, PropagateError> {
        Self::build_with(dtd, ann, fragment, cost, &mut PropScratch::new())
    }

    /// [`InversionForest::build`] over a recycled [`PropScratch`]: the
    /// bottom-up cheapest-cost queries run on the scratch's pooled Dijkstra
    /// state instead of allocating per node.
    pub(crate) fn build_with(
        dtd: &Dtd,
        ann: &Annotation,
        fragment: &DocTree,
        cost: &CostModel<'_>,
        scratch: &mut PropScratch,
    ) -> Result<InversionForest, PropagateError> {
        let mut graphs = SlotMap::with_capacity(fragment.size());
        let mut costs = SlotMap::with_capacity(fragment.size());
        for n in fragment.postorder() {
            let slot = fragment.slot(n).expect("traversed node in fragment");
            let g = build_graph(dtd, ann, fragment, n, cost, &costs);
            let best = g
                .best_cost_with(scratch.graph_mut())
                .ok_or(PropagateError::InversionImpossible(n))?;
            costs.insert(slot, best);
            graphs.insert(slot, g);
        }
        Ok(InversionForest {
            fragment: fragment.clone(),
            graphs,
            costs,
        })
    }

    fn slot_of(&self, n: NodeId) -> Slot {
        self.fragment.slot(n).expect("node in fragment")
    }

    /// The inversion graph `H_n` of fragment node `n`.
    pub fn graph(&self, n: NodeId) -> Option<&InvGraph> {
        self.graphs.get(self.fragment.slot(n)?)
    }

    /// The cheapest inversion-path cost of fragment node `n`.
    pub fn cost(&self, n: NodeId) -> Option<u64> {
        self.costs.get(self.fragment.slot(n)?).copied()
    }

    /// Iterates over `(n, H_n)` for every fragment node, in arena order.
    pub fn graphs(&self) -> impl Iterator<Item = (NodeId, &InvGraph)> {
        self.graphs.iter().map(|(s, g)| (self.fragment.id_at(s), g))
    }

    /// The size of a minimal inverse: every fragment node plus the
    /// cheapest invisible padding.
    pub fn min_inverse_size(&self) -> u64 {
        (self.fragment.size() as u64).saturating_add(self.min_padding())
    }

    /// The minimal number of invisible nodes any inverse must add.
    pub fn min_padding(&self) -> u64 {
        self.costs[self.slot_of(self.fragment.root())]
    }

    /// Materialises a size-minimal inverse: walks the optimal subgraph of
    /// every inversion graph under `selector`, instantiating insertlets (or
    /// budget-bounded minimal witnesses) for (i)-edges. Fragment nodes keep
    /// their identifiers; padding uses fresh identifiers from `gen`.
    pub fn materialize_min(
        &self,
        dtd: &Dtd,
        cost: &CostModel<'_>,
        selector: Selector,
        gen: &mut NodeIdGen,
        witness_budget: u64,
    ) -> Result<DocTree, PropagateError> {
        self.materialize_node(
            self.fragment.root(),
            dtd,
            cost,
            selector,
            gen,
            witness_budget,
        )
    }

    fn materialize_node(
        &self,
        n: NodeId,
        dtd: &Dtd,
        cost: &CostModel<'_>,
        selector: Selector,
        gen: &mut NodeIdGen,
        witness_budget: u64,
    ) -> Result<DocTree, PropagateError> {
        let g = &self.graphs[self.slot_of(n)];
        let opt = g
            .optimal_subgraph()
            .ok_or(PropagateError::InversionImpossible(n))?;
        let path = opt
            .walk(|g, outs| selector.pick(g, outs))
            .ok_or(PropagateError::InversionImpossible(n))?;
        self.materialize_path(n, &opt, &path, dtd, cost, selector, gen, witness_budget)
    }

    /// Builds the inverse tree for node `n` from an explicit edge path in
    /// (a subgraph of) its inversion graph.
    #[allow(clippy::too_many_arguments)]
    pub fn materialize_path(
        &self,
        n: NodeId,
        graph: &InvGraph,
        path: &[u32],
        dtd: &Dtd,
        cost: &CostModel<'_>,
        selector: Selector,
        gen: &mut NodeIdGen,
        witness_budget: u64,
    ) -> Result<DocTree, PropagateError> {
        let mut tree = Tree::leaf_with_id(n, self.fragment.label(n));
        let root = tree.root();
        for &e in path {
            match &graph.edge(e).payload {
                InvEdge::Ins(y) => {
                    let frag =
                        cost.insertlets
                            .instantiate(dtd, cost.sizes, *y, gen, witness_budget)?;
                    let pos = tree.children(root).len();
                    tree.attach_subtree(root, pos, frag)?;
                }
                InvEdge::Rec { child, .. } => {
                    let sub =
                        self.materialize_node(*child, dtd, cost, selector, gen, witness_budget)?;
                    let pos = tree.children(root).len();
                    tree.attach_subtree(root, pos, sub)?;
                }
            }
        }
        Ok(tree)
    }

    /// Enumerates inverses (bounded): up to `cap` trees overall, paths of
    /// at most `max_len` edges per node graph, full (possibly cyclic)
    /// graphs, child choices combined as a (bounded) cross-product.
    /// Exercises Theorem 1 — every returned tree is a true inverse, and
    /// when fewer than `cap` trees come back and no path hit `max_len`,
    /// the enumeration is exhaustive.
    pub fn enumerate_inverses(
        &self,
        dtd: &Dtd,
        cost: &CostModel<'_>,
        gen: &mut NodeIdGen,
        witness_budget: u64,
        cap: usize,
        max_len: usize,
    ) -> Result<Vec<DocTree>, PropagateError> {
        self.enumerate_node(
            self.fragment.root(),
            dtd,
            cost,
            gen,
            witness_budget,
            cap,
            max_len,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn enumerate_node(
        &self,
        n: NodeId,
        dtd: &Dtd,
        cost: &CostModel<'_>,
        gen: &mut NodeIdGen,
        witness_budget: u64,
        cap: usize,
        max_len: usize,
    ) -> Result<Vec<DocTree>, PropagateError> {
        let g = &self.graphs[self.slot_of(n)];
        let paths = g.enumerate_paths(cap, max_len);
        let mut out: Vec<DocTree> = Vec::new();
        'paths: for path in paths {
            // Materialise the per-edge choice sets: a singleton fragment
            // for each (i)-edge, the recursive enumeration for each
            // (ii)-edge — then emit their cross-product (bounded by
            // `cap`), so inverses differing only below a visible child
            // are all produced.
            let mut edge_options: Vec<Vec<DocTree>> = Vec::with_capacity(path.len());
            for &e in &path {
                match &g.edge(e).payload {
                    InvEdge::Ins(y) => {
                        match cost
                            .insertlets
                            .instantiate(dtd, cost.sizes, *y, gen, witness_budget)
                        {
                            Ok(frag) => edge_options.push(vec![frag]),
                            Err(_) => continue 'paths,
                        }
                    }
                    InvEdge::Rec { child, .. } => {
                        let subs = self.enumerate_node(
                            *child,
                            dtd,
                            cost,
                            gen,
                            witness_budget,
                            cap,
                            max_len,
                        )?;
                        if subs.is_empty() {
                            continue 'paths;
                        }
                        edge_options.push(subs);
                    }
                }
            }
            let mut combos: Vec<Vec<usize>> = vec![Vec::with_capacity(edge_options.len())];
            for opts in &edge_options {
                let mut next = Vec::with_capacity(combos.len().saturating_mul(opts.len()));
                'grow: for prefix in &combos {
                    for i in 0..opts.len() {
                        let mut row = prefix.clone();
                        row.push(i);
                        next.push(row);
                        if next.len() > cap {
                            break 'grow; // bounded: cap trees suffice
                        }
                    }
                }
                combos = next;
            }
            for combo in combos {
                let mut tree = Tree::leaf_with_id(n, self.fragment.label(n));
                let root = tree.root();
                for (slot, &i) in combo.iter().enumerate() {
                    let pos = tree.children(root).len();
                    tree.attach_subtree(root, pos, edge_options[slot][i].clone())?;
                }
                out.push(tree);
                if out.len() >= cap {
                    return Ok(out);
                }
            }
        }
        Ok(out)
    }

    /// Counts size-minimal inverses — the number of cheapest inversion
    /// paths, multiplied recursively through `Rec` edges (saturating
    /// `u128`). Distinct counts correspond to distinct inverses when
    /// content models are deterministic.
    pub fn count_min_inverses(&self) -> u128 {
        self.count_node(self.fragment.root())
    }

    fn count_node(&self, n: NodeId) -> u128 {
        let g = &self.graphs[self.slot_of(n)];
        let Some(opt) = g.optimal_subgraph() else {
            return 0;
        };
        opt.count_paths(|e| match e {
            InvEdge::Ins(_) => 1,
            InvEdge::Rec { child, .. } => self.count_node(*child),
        })
        .expect("optimal subgraphs are acyclic (paper, Further results)")
    }
}

/// Builds the inversion graph `H_n` for one node of the fragment.
/// `child_costs` is keyed by fragment slot.
fn build_graph(
    dtd: &Dtd,
    ann: &Annotation,
    fragment: &DocTree,
    n: NodeId,
    cost: &CostModel<'_>,
    child_costs: &SlotMap<u64>,
) -> InvGraph {
    let x = fragment.label(n);
    let model = dtd.content_model(x);
    let children = fragment.children(n);
    let k = children.len() as u32;
    let nq = model.num_states() as u32;

    let vid = |pos: u32, q: StateId| pos * nq + q.0;
    let vertices: Vec<InvVertex> = (0..=k)
        .flat_map(|pos| {
            (0..nq).map(move |q| InvVertex {
                pos,
                state: StateId(q),
            })
        })
        .collect();
    let mut g: InvGraph = PathGraph::new(vertices, vid(0, model.start()));

    for pos in 0..=k {
        for q in model.states() {
            // (i) invisible inserts: stay at pos
            for &(y, q2) in model.transitions_from(q) {
                if !ann.is_visible(x, y) && cost.insertable(y) {
                    g.add_edge(vid(pos, q), vid(pos, q2), cost.charge(y), InvEdge::Ins(y));
                }
            }
            // (ii) consume the next visible child
            if pos < k {
                let child = children[pos as usize];
                let y = fragment.label(child);
                if ann.is_visible(x, y) {
                    let cslot = fragment.slot(child).expect("child in fragment");
                    for &(s, q2) in model.transitions_from(q) {
                        if s == y {
                            g.add_edge(
                                vid(pos, q),
                                vid(pos + 1, q2),
                                child_costs[cslot],
                                InvEdge::Rec {
                                    index: pos + 1,
                                    child,
                                },
                            );
                        }
                    }
                }
            }
        }
    }
    for q in model.accepting_states() {
        g.set_goal(vid(k, q));
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use xvu_dtd::{min_sizes, InsertletPackage};
    use xvu_tree::{parse_term_with_ids, to_term};
    use xvu_view::extract_view;

    /// Paper Figure 6 setting: invert the fragment d#11(c#13, c#14) of
    /// Out(S0) w.r.t. D0 and A0.
    fn fig6() -> (fixtures::PaperFixture, DocTree) {
        let mut fx = fixtures::paper_running_example();
        let frag = parse_term_with_ids(&mut fx.alpha, &mut fx.gen, "d#11(c#13, c#14)").unwrap();
        (fx, frag)
    }

    #[test]
    fn fig6_graph_census() {
        let (fx, frag) = fig6();
        let sizes = min_sizes(&fx.dtd, fx.alpha.len());
        let pkg = InsertletPackage::new();
        let cm = CostModel {
            sizes: &sizes,
            insertlets: &pkg,
        };
        let forest = InversionForest::build(&fx.dtd, &fx.ann, &frag, &cm).unwrap();
        let g = forest.graph(frag.root()).unwrap();
        // D0(d) = ((a+b)·c)* has 3 Glushkov states {p0, pa/pb merged? no:
        // positions a, b, c → 4 states}; the paper's hand-drawn automaton
        // uses 2 states. Structure is automaton-representation dependent;
        // what is invariant: positions 0..=2 (c0, n13, n14) and the
        // language of inversion paths. Check the invariants.
        assert_eq!(g.n_vertices() % 3, 0, "vertices = 3 positions × |Q|");
        // Fig. 6 path: Ins(a) Rec(1) Ins(b) Rec(2) has cost 2 (two
        // invisible singleton inserts) — the minimum.
        assert_eq!(forest.cost(frag.root()), Some(2));
        assert_eq!(forest.min_inverse_size(), 3 + 2);
    }

    #[test]
    fn fig6_minimal_inverse_shape() {
        let (fx, frag) = fig6();
        let sizes = min_sizes(&fx.dtd, fx.alpha.len());
        let pkg = InsertletPackage::new();
        let cm = CostModel {
            sizes: &sizes,
            insertlets: &pkg,
        };
        let forest = InversionForest::build(&fx.dtd, &fx.ann, &frag, &cm).unwrap();
        let mut gen = fx.gen.clone();
        let inv = forest
            .materialize_min(&fx.dtd, &cm, Selector::PreferNop, &mut gen, 1_000)
            .unwrap();
        // Fig. 6 inverse: d(a, c, b, c) — with PreferNop tie-breaking on
        // symbol index, invisible letters are a (index 1) vs b (index 2),
        // so both paddings pick 'a': d(a, c, a, c).
        assert_eq!(inv.size(), 5);
        assert!(fx.dtd.is_valid(&inv));
        // The view of the inverse is the fragment again (Inv definition).
        let view = extract_view(&fx.ann, &inv);
        assert_eq!(view, frag);
        // fragment ids preserved
        assert!(inv.contains(xvu_tree::NodeId(13)));
        assert!(inv.contains(xvu_tree::NodeId(14)));
        assert_eq!(to_term(&inv, &fx.alpha), "d(a, c, a, c)");
    }

    #[test]
    fn every_enumerated_inverse_is_sound() {
        // Theorem 1 (soundness direction), bounded.
        let (fx, frag) = fig6();
        let sizes = min_sizes(&fx.dtd, fx.alpha.len());
        let pkg = InsertletPackage::new();
        let cm = CostModel {
            sizes: &sizes,
            insertlets: &pkg,
        };
        let forest = InversionForest::build(&fx.dtd, &fx.ann, &frag, &cm).unwrap();
        let mut gen = fx.gen.clone();
        let inverses = forest
            .enumerate_inverses(&fx.dtd, &cm, &mut gen, 1_000, 50, 12)
            .unwrap();
        // ((a+b)·c)* admits exactly one invisible letter before each c:
        // 2 × 2 = 4 inverses, all minimal (D0 has no pumpable letters).
        assert_eq!(inverses.len(), 4);
        for inv in &inverses {
            assert!(fx.dtd.is_valid(inv), "inverse must satisfy D");
            assert_eq!(
                extract_view(&fx.ann, inv),
                frag,
                "inverse view must equal the fragment"
            );
            assert_eq!(inv.size() as u64, forest.min_inverse_size());
        }
    }

    #[test]
    fn pumpable_letters_yield_unboundedly_many_inverses() {
        // r → (a·b*)* with b hidden: the fragment r(a) has inverses
        // r(a b^k) for every k — Inv is infinite, captured by cycles.
        use xvu_dtd::parse_dtd;
        use xvu_tree::{Alphabet, NodeIdGen};
        use xvu_view::parse_annotation;

        let mut alpha = Alphabet::new();
        let dtd = parse_dtd(&mut alpha, "r -> (a.b*)*").unwrap();
        let ann = parse_annotation(&mut alpha, "hide r b").unwrap();
        let mut gen = NodeIdGen::new();
        let frag = parse_term_with_ids(&mut alpha, &mut gen, "r#0(a#1)").unwrap();
        let sizes = min_sizes(&dtd, alpha.len());
        let pkg = InsertletPackage::new();
        let cm = CostModel {
            sizes: &sizes,
            insertlets: &pkg,
        };
        let forest = InversionForest::build(&dtd, &ann, &frag, &cm).unwrap();
        assert_eq!(forest.min_padding(), 0);
        let inverses = forest
            .enumerate_inverses(&dtd, &cm, &mut gen, 1_000, 50, 8)
            .unwrap();
        assert!(inverses.len() >= 5, "got {}", inverses.len());
        let mut sizes_seen = std::collections::HashSet::new();
        for inv in &inverses {
            assert!(dtd.is_valid(inv));
            assert_eq!(extract_view(&ann, inv), frag);
            sizes_seen.insert(inv.size());
        }
        assert!(sizes_seen.len() > 1, "pumping must produce several sizes");
    }

    #[test]
    fn count_min_inverses_fig6() {
        let (fx, frag) = fig6();
        let sizes = min_sizes(&fx.dtd, fx.alpha.len());
        let pkg = InsertletPackage::new();
        let cm = CostModel {
            sizes: &sizes,
            insertlets: &pkg,
        };
        let forest = InversionForest::build(&fx.dtd, &fx.ann, &frag, &cm).unwrap();
        // Each of the two c-children needs one invisible (a+b) sibling:
        // 2 × 2 = 4 minimal inverses.
        assert_eq!(forest.count_min_inverses(), 4);
    }

    #[test]
    fn whole_view_inverts_to_a_valid_source() {
        let fx = fixtures::paper_running_example();
        let view = extract_view(&fx.ann, &fx.t0);
        let sizes = min_sizes(&fx.dtd, fx.alpha.len());
        let pkg = InsertletPackage::new();
        let cm = CostModel {
            sizes: &sizes,
            insertlets: &pkg,
        };
        let forest = InversionForest::build(&fx.dtd, &fx.ann, &view, &cm).unwrap();
        let mut gen = fx.gen.clone();
        let inv = forest
            .materialize_min(&fx.dtd, &cm, Selector::PreferNop, &mut gen, 1_000)
            .unwrap();
        assert!(fx.dtd.is_valid(&inv));
        assert_eq!(extract_view(&fx.ann, &inv), view);
        assert_eq!(inv.size() as u64, forest.min_inverse_size());
        // View of t0 has 7 nodes; each of the two d-groups in the view
        // needs one invisible (b+c) under r... — actually r's word
        // a d a d needs b/c between each a and d: 2 invisible; and each
        // visible c under d needs one invisible (a+b) sibling: 2 more.
        assert_eq!(forest.min_padding(), 4);
        assert_eq!(inv.size(), 11);
    }

    #[test]
    fn uninvertible_fragment_is_reported() {
        // Fragment r(d, a) cannot be a view: no D0 word erases to d·a.
        let mut fx = fixtures::paper_running_example();
        let frag = parse_term_with_ids(&mut fx.alpha, &mut fx.gen, "r#90(d#91, a#92)").unwrap();
        let sizes = min_sizes(&fx.dtd, fx.alpha.len());
        let pkg = InsertletPackage::new();
        let cm = CostModel {
            sizes: &sizes,
            insertlets: &pkg,
        };
        let err = InversionForest::build(&fx.dtd, &fx.ann, &frag, &cm).unwrap_err();
        assert_eq!(err, PropagateError::InversionImpossible(NodeId(90)));
    }

    #[test]
    fn optimal_inversion_graphs_are_acyclic() {
        let (fx, frag) = fig6();
        let sizes = min_sizes(&fx.dtd, fx.alpha.len());
        let pkg = InsertletPackage::new();
        let cm = CostModel {
            sizes: &sizes,
            insertlets: &pkg,
        };
        let forest = InversionForest::build(&fx.dtd, &fx.ann, &frag, &cm).unwrap();
        for (_, g) in forest.graphs() {
            let opt = g.optimal_subgraph().unwrap();
            assert!(opt.is_acyclic());
        }
    }

    use xvu_tree::NodeId;
}
