//! Segment decomposition of child sequences (paper §4).
//!
//! For a preserved node `n`, let `m_1 … m_k` be its children in the source
//! `t` and `m'_1 … m'_ℓ` its children in the update script `S`. The
//! **common nodes** `N_C = {c_0} ∪ ({m_i} ∩ {m'_j})` are the visible
//! children that survive in the script (as `Nop` or `Del`); hidden source
//! children appear only on the `t` side, freshly inserted nodes only on
//! the `S` side. Both sequences are partitioned into *segments* between
//! consecutive common nodes, and the propagation graph shuffles each pair
//! of corresponding segments.
//!
//! This module computes the decomposition and its alignment invariants.

use crate::error::PropagateError;
use xvu_tree::NodeId;

/// Recyclable segmentation buffers: the sorted membership copies plus the
/// vectors a [`Segmentation`] owns while alive. [`Segmentation::new_with`]
/// takes them (clear-not-free) and [`Segmentation::recycle`] returns them,
/// so a warm [`crate::PropScratch`] builds segmentations without transient
/// allocation.
#[derive(Debug, Default)]
pub(crate) struct SegBufs {
    t_sorted: Vec<NodeId>,
    s_sorted: Vec<NodeId>,
    common_s: Vec<NodeId>,
    t_common: Vec<bool>,
    s_common: Vec<bool>,
    t_anchor: Vec<u32>,
    s_anchor: Vec<u32>,
    common: Vec<NodeId>,
}

/// The aligned segment decomposition of one preserved node's child
/// sequences.
///
/// Child sequences are borrowed from the trees' arenas — building a
/// segmentation copies nothing per child.
#[derive(Clone, Debug)]
pub struct Segmentation<'a> {
    /// Children of `n` in the source `t`.
    pub t_children: &'a [NodeId],
    /// Children of `n` in the script `S`.
    pub s_children: &'a [NodeId],
    /// `t_anchor[i]` for `i ∈ 0..=k`: the number of common nodes among
    /// `m_1 … m_i` — i.e. which segment position `i` belongs to.
    pub t_anchor: Vec<u32>,
    /// Same for the script side, `j ∈ 0..=ℓ`.
    pub s_anchor: Vec<u32>,
    /// `t_common[i]` for `i ∈ 1..=k`: whether `m_i` is a common node.
    pub t_common: Vec<bool>,
    /// `s_common[j]` for `j ∈ 1..=ℓ`.
    pub s_common: Vec<bool>,
    /// The common nodes in order (without `c_0`).
    pub common: Vec<NodeId>,
}

impl<'a> Segmentation<'a> {
    /// Computes the decomposition, verifying the alignment invariant: the
    /// common nodes appear in the same order on both sides (guaranteed
    /// when `In(S) = A(t)`, diagnosed otherwise).
    ///
    /// Membership of a child in the *other* side's sequence is tested
    /// against a sorted copy (binary search) — no hashing; the sequences
    /// are sibling lists, not whole trees.
    pub fn new(
        t_children: &'a [NodeId],
        s_children: &'a [NodeId],
    ) -> Result<Segmentation<'a>, PropagateError> {
        Segmentation::new_with(t_children, s_children, &mut SegBufs::default())
    }

    /// [`Segmentation::new`] over recycled buffers: every vector the
    /// decomposition needs — transient sorted copies and the owned result
    /// vectors alike — is taken from `bufs` with its capacity intact.
    /// Hand the segmentation back via [`Segmentation::recycle`] when done.
    pub(crate) fn new_with(
        t_children: &'a [NodeId],
        s_children: &'a [NodeId],
        bufs: &mut SegBufs,
    ) -> Result<Segmentation<'a>, PropagateError> {
        let t_sorted = &mut bufs.t_sorted;
        t_sorted.clear();
        t_sorted.extend_from_slice(t_children);
        t_sorted.sort_unstable();
        let s_sorted = &mut bufs.s_sorted;
        s_sorted.clear();
        s_sorted.extend_from_slice(s_children);
        s_sorted.sort_unstable();

        let mut t_common = std::mem::take(&mut bufs.t_common);
        t_common.clear();
        t_common.extend(t_children.iter().map(|c| s_sorted.binary_search(c).is_ok()));
        let mut s_common = std::mem::take(&mut bufs.s_common);
        s_common.clear();
        s_common.extend(s_children.iter().map(|c| t_sorted.binary_search(c).is_ok()));

        let mut common = std::mem::take(&mut bufs.common);
        common.clear();
        common.extend(
            t_children
                .iter()
                .zip(&t_common)
                .filter(|(_, &c)| c)
                .map(|(&n, _)| n),
        );
        let common_s = &mut bufs.common_s;
        common_s.clear();
        common_s.extend(
            s_children
                .iter()
                .zip(&s_common)
                .filter(|(_, &c)| c)
                .map(|(&n, _)| n),
        );
        if common != *common_s {
            let err = PropagateError::InvalidInstance(format!(
                "common children of a preserved node appear in different orders: \
                 {common:?} in the source vs {common_s:?} in the update"
            ));
            // hand the taken buffers back so the scratch keeps its capacity
            bufs.t_common = t_common;
            bufs.s_common = s_common;
            bufs.common = common;
            return Err(err);
        }

        let mut t_anchor = std::mem::take(&mut bufs.t_anchor);
        t_anchor.clear();
        t_anchor.reserve(t_children.len() + 1);
        t_anchor.push(0u32);
        let mut acc = 0u32;
        for &c in &t_common {
            if c {
                acc += 1;
            }
            t_anchor.push(acc);
        }
        let mut s_anchor = std::mem::take(&mut bufs.s_anchor);
        s_anchor.clear();
        s_anchor.reserve(s_children.len() + 1);
        s_anchor.push(0u32);
        let mut acc = 0u32;
        for &c in &s_common {
            if c {
                acc += 1;
            }
            s_anchor.push(acc);
        }

        Ok(Segmentation {
            t_children,
            s_children,
            t_anchor,
            s_anchor,
            t_common,
            s_common,
            common,
        })
    }

    /// Returns the owned vectors to `bufs` (capacity intact) for the next
    /// [`Segmentation::new_with`].
    pub(crate) fn recycle(self, bufs: &mut SegBufs) {
        bufs.t_common = self.t_common;
        bufs.s_common = self.s_common;
        bufs.t_anchor = self.t_anchor;
        bufs.s_anchor = self.s_anchor;
        bufs.common = self.common;
    }

    /// Number of source children `k`.
    pub fn k(&self) -> usize {
        self.t_children.len()
    }

    /// Number of script children `ℓ`.
    pub fn l(&self) -> usize {
        self.s_children.len()
    }

    /// Whether the graph vertex `(i, ·, j)` exists: both positions lie in
    /// the same segment.
    #[inline]
    pub fn aligned(&self, i: usize, j: usize) -> bool {
        self.t_anchor[i] == self.s_anchor[j]
    }

    /// All aligned `(i, j)` position pairs, grouped by segment and in
    /// lexicographic order within each segment. This enumerates exactly
    /// the vertex blocks of the propagation graph — `Σ_c |seg_t(c)| ·
    /// |seg_S(c)|` pairs — without scanning the full `(k+1) × (ℓ+1)`
    /// grid (which is quadratic even when every child is common).
    pub fn aligned_pairs(&self) -> Vec<(u32, u32)> {
        let mut pairs = Vec::new();
        self.aligned_pairs_into(&mut pairs);
        pairs
    }

    /// [`Segmentation::aligned_pairs`] into a recycled buffer. Anchor
    /// sequences are monotone, so each segment's positions form one
    /// contiguous run per side — a single two-pointer sweep enumerates the
    /// pairs with no per-segment buckets at all.
    pub(crate) fn aligned_pairs_into(&self, pairs: &mut Vec<(u32, u32)>) {
        pairs.clear();
        let n_segments = self.common.len() + 1;
        let (ta, sa) = (&self.t_anchor, &self.s_anchor);
        let (mut i0, mut j0) = (0usize, 0usize);
        for c in 0..n_segments as u32 {
            let i1 = i0 + ta[i0..].iter().take_while(|&&a| a == c).count();
            let j1 = j0 + sa[j0..].iter().take_while(|&&a| a == c).count();
            for i in i0..i1 {
                for j in j0..j1 {
                    pairs.push((i as u32, j as u32));
                }
            }
            (i0, j0) = (i1, j1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u64]) -> Vec<NodeId> {
        v.iter().map(|&i| NodeId(i)).collect()
    }

    #[test]
    fn paper_root_segmentation() {
        // n0 in t0: children 1 2 3 4 5 6; in S0: 1 3 4 11 12 6.
        // Common: 1, 3, 4, 6.
        let (t, u) = (ids(&[1, 2, 3, 4, 5, 6]), ids(&[1, 3, 4, 11, 12, 6]));
        let seg = Segmentation::new(&t, &u).unwrap();
        assert_eq!(seg.common, ids(&[1, 3, 4, 6]));
        assert_eq!(seg.t_anchor, vec![0, 1, 1, 2, 3, 3, 4]);
        assert_eq!(seg.s_anchor, vec![0, 1, 2, 3, 3, 3, 4]);
        assert!(seg.aligned(0, 0));
        assert!(seg.aligned(4, 3)); // both in segment after common #3 (n4)
        assert!(seg.aligned(5, 5)); // hidden c5 | inserted a12, same segment
        assert!(!seg.aligned(1, 2));
        assert_eq!(seg.k(), 6);
        assert_eq!(seg.l(), 6);
    }

    #[test]
    fn misordered_common_nodes_are_rejected() {
        let err = Segmentation::new(&ids(&[1, 2]), &ids(&[2, 1])).unwrap_err();
        assert!(matches!(err, PropagateError::InvalidInstance(_)));
    }

    #[test]
    fn no_common_nodes_single_segment() {
        let (t, u) = (ids(&[1, 2]), ids(&[10, 11, 12]));
        let seg = Segmentation::new(&t, &u).unwrap();
        assert!(seg.common.is_empty());
        assert_eq!(seg.t_anchor, vec![0, 0, 0]);
        assert_eq!(seg.s_anchor, vec![0, 0, 0, 0]);
        for i in 0..=2 {
            for j in 0..=3 {
                assert!(seg.aligned(i, j));
            }
        }
    }

    #[test]
    fn empty_sequences() {
        let seg = Segmentation::new(&[], &[]).unwrap();
        assert_eq!(seg.k(), 0);
        assert_eq!(seg.l(), 0);
        assert!(seg.aligned(0, 0));
    }

    #[test]
    fn recycled_buffers_reproduce_fresh_segmentations() {
        let mut bufs = SegBufs::default();
        let (t, u) = (ids(&[1, 2, 3, 4, 5, 6]), ids(&[1, 3, 4, 11, 12, 6]));
        let fresh = Segmentation::new(&t, &u).unwrap();
        let expected_pairs = fresh.aligned_pairs();
        for _ in 0..3 {
            let seg = Segmentation::new_with(&t, &u, &mut bufs).unwrap();
            assert_eq!(seg.t_anchor, fresh.t_anchor);
            assert_eq!(seg.s_anchor, fresh.s_anchor);
            assert_eq!(seg.common, fresh.common);
            assert_eq!(seg.aligned_pairs(), expected_pairs);
            seg.recycle(&mut bufs);
        }
        // a differently-shaped reuse of the same buffers must not leak
        let (t2, u2) = (ids(&[7, 8]), ids(&[8]));
        let seg = Segmentation::new_with(&t2, &u2, &mut bufs).unwrap();
        assert_eq!(seg.common, ids(&[8]));
        assert_eq!(seg.t_anchor, vec![0, 0, 1]);
        seg.recycle(&mut bufs);
    }

    #[test]
    fn all_common_identity() {
        let (t, u) = (ids(&[1, 2, 3]), ids(&[1, 2, 3]));
        let seg = Segmentation::new(&t, &u).unwrap();
        assert_eq!(seg.common.len(), 3);
        assert!(seg.aligned(2, 2));
        assert!(!seg.aligned(2, 1));
    }
}
