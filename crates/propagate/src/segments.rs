//! Segment decomposition of child sequences (paper §4).
//!
//! For a preserved node `n`, let `m_1 … m_k` be its children in the source
//! `t` and `m'_1 … m'_ℓ` its children in the update script `S`. The
//! **common nodes** `N_C = {c_0} ∪ ({m_i} ∩ {m'_j})` are the visible
//! children that survive in the script (as `Nop` or `Del`); hidden source
//! children appear only on the `t` side, freshly inserted nodes only on
//! the `S` side. Both sequences are partitioned into *segments* between
//! consecutive common nodes, and the propagation graph shuffles each pair
//! of corresponding segments.
//!
//! This module computes the decomposition and its alignment invariants.

use crate::error::PropagateError;
use xvu_tree::NodeId;

/// The aligned segment decomposition of one preserved node's child
/// sequences.
///
/// Child sequences are borrowed from the trees' arenas — building a
/// segmentation copies nothing per child.
#[derive(Clone, Debug)]
pub struct Segmentation<'a> {
    /// Children of `n` in the source `t`.
    pub t_children: &'a [NodeId],
    /// Children of `n` in the script `S`.
    pub s_children: &'a [NodeId],
    /// `t_anchor[i]` for `i ∈ 0..=k`: the number of common nodes among
    /// `m_1 … m_i` — i.e. which segment position `i` belongs to.
    pub t_anchor: Vec<u32>,
    /// Same for the script side, `j ∈ 0..=ℓ`.
    pub s_anchor: Vec<u32>,
    /// `t_common[i]` for `i ∈ 1..=k`: whether `m_i` is a common node.
    pub t_common: Vec<bool>,
    /// `s_common[j]` for `j ∈ 1..=ℓ`.
    pub s_common: Vec<bool>,
    /// The common nodes in order (without `c_0`).
    pub common: Vec<NodeId>,
}

impl<'a> Segmentation<'a> {
    /// Computes the decomposition, verifying the alignment invariant: the
    /// common nodes appear in the same order on both sides (guaranteed
    /// when `In(S) = A(t)`, diagnosed otherwise).
    ///
    /// Membership of a child in the *other* side's sequence is tested
    /// against a sorted copy (binary search) — no hashing; the sequences
    /// are sibling lists, not whole trees.
    pub fn new(
        t_children: &'a [NodeId],
        s_children: &'a [NodeId],
    ) -> Result<Segmentation<'a>, PropagateError> {
        let mut t_sorted: Vec<NodeId> = t_children.to_vec();
        t_sorted.sort_unstable();
        let mut s_sorted: Vec<NodeId> = s_children.to_vec();
        s_sorted.sort_unstable();

        let t_common: Vec<bool> = t_children
            .iter()
            .map(|c| s_sorted.binary_search(c).is_ok())
            .collect();
        let s_common: Vec<bool> = s_children
            .iter()
            .map(|c| t_sorted.binary_search(c).is_ok())
            .collect();

        let common_t: Vec<NodeId> = t_children
            .iter()
            .zip(&t_common)
            .filter(|(_, &c)| c)
            .map(|(&n, _)| n)
            .collect();
        let common_s: Vec<NodeId> = s_children
            .iter()
            .zip(&s_common)
            .filter(|(_, &c)| c)
            .map(|(&n, _)| n)
            .collect();
        if common_t != common_s {
            return Err(PropagateError::InvalidInstance(format!(
                "common children of a preserved node appear in different orders: \
                 {common_t:?} in the source vs {common_s:?} in the update"
            )));
        }

        let mut t_anchor = Vec::with_capacity(t_children.len() + 1);
        t_anchor.push(0u32);
        let mut acc = 0u32;
        for &c in &t_common {
            if c {
                acc += 1;
            }
            t_anchor.push(acc);
        }
        let mut s_anchor = Vec::with_capacity(s_children.len() + 1);
        s_anchor.push(0u32);
        let mut acc = 0u32;
        for &c in &s_common {
            if c {
                acc += 1;
            }
            s_anchor.push(acc);
        }

        Ok(Segmentation {
            t_children,
            s_children,
            t_anchor,
            s_anchor,
            t_common,
            s_common,
            common: common_t,
        })
    }

    /// Number of source children `k`.
    pub fn k(&self) -> usize {
        self.t_children.len()
    }

    /// Number of script children `ℓ`.
    pub fn l(&self) -> usize {
        self.s_children.len()
    }

    /// Whether the graph vertex `(i, ·, j)` exists: both positions lie in
    /// the same segment.
    #[inline]
    pub fn aligned(&self, i: usize, j: usize) -> bool {
        self.t_anchor[i] == self.s_anchor[j]
    }

    /// All aligned `(i, j)` position pairs, grouped by segment and in
    /// lexicographic order within each segment. This enumerates exactly
    /// the vertex blocks of the propagation graph — `Σ_c |seg_t(c)| ·
    /// |seg_S(c)|` pairs — without scanning the full `(k+1) × (ℓ+1)`
    /// grid (which is quadratic even when every child is common).
    pub fn aligned_pairs(&self) -> Vec<(u32, u32)> {
        let n_segments = self.common.len() + 1;
        let mut t_by_anchor: Vec<Vec<u32>> = vec![Vec::new(); n_segments];
        for (i, &a) in self.t_anchor.iter().enumerate() {
            t_by_anchor[a as usize].push(i as u32);
        }
        let mut s_by_anchor: Vec<Vec<u32>> = vec![Vec::new(); n_segments];
        for (j, &a) in self.s_anchor.iter().enumerate() {
            s_by_anchor[a as usize].push(j as u32);
        }
        let mut pairs = Vec::new();
        for c in 0..n_segments {
            for &i in &t_by_anchor[c] {
                for &j in &s_by_anchor[c] {
                    pairs.push((i, j));
                }
            }
        }
        pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u64]) -> Vec<NodeId> {
        v.iter().map(|&i| NodeId(i)).collect()
    }

    #[test]
    fn paper_root_segmentation() {
        // n0 in t0: children 1 2 3 4 5 6; in S0: 1 3 4 11 12 6.
        // Common: 1, 3, 4, 6.
        let (t, u) = (ids(&[1, 2, 3, 4, 5, 6]), ids(&[1, 3, 4, 11, 12, 6]));
        let seg = Segmentation::new(&t, &u).unwrap();
        assert_eq!(seg.common, ids(&[1, 3, 4, 6]));
        assert_eq!(seg.t_anchor, vec![0, 1, 1, 2, 3, 3, 4]);
        assert_eq!(seg.s_anchor, vec![0, 1, 2, 3, 3, 3, 4]);
        assert!(seg.aligned(0, 0));
        assert!(seg.aligned(4, 3)); // both in segment after common #3 (n4)
        assert!(seg.aligned(5, 5)); // hidden c5 | inserted a12, same segment
        assert!(!seg.aligned(1, 2));
        assert_eq!(seg.k(), 6);
        assert_eq!(seg.l(), 6);
    }

    #[test]
    fn misordered_common_nodes_are_rejected() {
        let err = Segmentation::new(&ids(&[1, 2]), &ids(&[2, 1])).unwrap_err();
        assert!(matches!(err, PropagateError::InvalidInstance(_)));
    }

    #[test]
    fn no_common_nodes_single_segment() {
        let (t, u) = (ids(&[1, 2]), ids(&[10, 11, 12]));
        let seg = Segmentation::new(&t, &u).unwrap();
        assert!(seg.common.is_empty());
        assert_eq!(seg.t_anchor, vec![0, 0, 0]);
        assert_eq!(seg.s_anchor, vec![0, 0, 0, 0]);
        for i in 0..=2 {
            for j in 0..=3 {
                assert!(seg.aligned(i, j));
            }
        }
    }

    #[test]
    fn empty_sequences() {
        let seg = Segmentation::new(&[], &[]).unwrap();
        assert_eq!(seg.k(), 0);
        assert_eq!(seg.l(), 0);
        assert!(seg.aligned(0, 0));
    }

    #[test]
    fn all_common_identity() {
        let (t, u) = (ids(&[1, 2, 3]), ids(&[1, 2, 3]));
        let seg = Segmentation::new(&t, &u).unwrap();
        assert_eq!(seg.common.len(), 3);
        assert!(seg.aligned(2, 2));
        assert!(!seg.aligned(2, 1));
    }
}
