//! Path-selection strategies (paper §5).
//!
//! The paper's algorithm is parameterised by a function `Φ` that selects
//! one preferred path in every (optimal) inversion and propagation graph;
//! any polynomial `Φ` yields a polynomial end-to-end algorithm (Theorem 6).
//! Two concrete strategies are sketched in the paper and implemented here:
//!
//! * **edge-kind preference** — e.g. "prefer `Nop`-edges over `Ins`-edges",
//!   which is exactly how the paper's Figure 10 path is chosen
//!   ([`Selector::PreferNop`]);
//! * **typing-based** — prefer edges that keep the automaton-state *type*
//!   of preserved nodes unchanged between `In(S')` and `Out(S')`
//!   ([`Selector::PreferTypePreserving`]; requires deterministic content
//!   models, "a commonly enforced requirement for DTDs").
//!
//! Selection happens edge-by-edge while walking an **optimal subgraph**:
//! there, every outgoing edge lies on some cheapest path, so local greedy
//! choices are globally optimal and the tie-break order below makes the
//! resulting propagation unique and deterministic.

use crate::pathgraph::PathGraph;

/// Coarse classification of graph edges, shared by inversion and
/// propagation graphs.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum EdgeClass {
    /// Keeps existing material (visible or invisible `Nop`, and inversion
    /// `Rec` edges, which carry existing view nodes).
    Keep,
    /// Deletes existing material.
    Delete,
    /// Inserts new material.
    Insert,
}

/// Edge payloads that can be ranked by a [`Selector`].
pub trait Classify {
    /// The coarse class of the edge.
    fn class(&self) -> EdgeClass;
    /// A deterministic per-kind tie-break hint (e.g. inserted symbol
    /// index). Lower is preferred.
    fn tie_break(&self) -> u64;
    /// Whether following this edge preserves the node's automaton-state
    /// type (meaningful for `Keep` edges; `false` elsewhere).
    fn preserves_type(&self) -> bool;
}

/// A deterministic path-selection strategy `Φ`.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum Selector {
    /// Take the first edge in construction order. Fast, deterministic,
    /// arbitrary.
    First,
    /// Prefer `Keep` over `Delete` over `Insert`, then smaller tie-break,
    /// then construction order (the paper's Figure 10 preference).
    #[default]
    PreferNop,
    /// Like [`Selector::PreferNop`] but rank type-preserving edges first
    /// (paper §5's typing `Θ` based on deterministic content-model
    /// states).
    PreferTypePreserving,
}

impl Selector {
    /// Picks one of the outgoing edge indices `outs` (non-empty) of `g`.
    pub fn pick<V, E: Classify>(&self, g: &PathGraph<V, E>, outs: &[u32]) -> u32 {
        assert!(!outs.is_empty(), "selector called with no candidates");
        match self {
            Selector::First => outs[0],
            Selector::PreferNop => *outs
                .iter()
                .min_by_key(|&&e| {
                    let p = &g.edge(e).payload;
                    (p.class(), p.tie_break(), e)
                })
                .expect("non-empty"),
            Selector::PreferTypePreserving => *outs
                .iter()
                .min_by_key(|&&e| {
                    let p = &g.edge(e).payload;
                    (!p.preserves_type(), p.class(), p.tie_break(), e)
                })
                .expect("non-empty"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug)]
    struct E(EdgeClass, u64, bool);

    impl Classify for E {
        fn class(&self) -> EdgeClass {
            self.0
        }
        fn tie_break(&self) -> u64 {
            self.1
        }
        fn preserves_type(&self) -> bool {
            self.2
        }
    }

    fn graph() -> PathGraph<(), E> {
        let mut g = PathGraph::new(vec![(), ()], 0);
        g.add_edge(0, 1, 0, E(EdgeClass::Insert, 0, false)); // idx 0
        g.add_edge(0, 1, 0, E(EdgeClass::Keep, 5, false)); // idx 1
        g.add_edge(0, 1, 0, E(EdgeClass::Keep, 2, false)); // idx 2
        g.add_edge(0, 1, 0, E(EdgeClass::Delete, 0, true)); // idx 3
        g.set_goal(1);
        g
    }

    #[test]
    fn first_takes_construction_order() {
        let g = graph();
        assert_eq!(Selector::First.pick(&g, &[0, 1, 2, 3]), 0);
    }

    #[test]
    fn prefer_nop_ranks_keep_then_tiebreak() {
        let g = graph();
        // Keep edges are 1 and 2; tie-break 2 < 5 picks edge 2.
        assert_eq!(Selector::PreferNop.pick(&g, &[0, 1, 2, 3]), 2);
    }

    #[test]
    fn type_preserving_outranks_class() {
        let g = graph();
        // Only edge 3 preserves type, despite being a Delete.
        assert_eq!(Selector::PreferTypePreserving.pick(&g, &[0, 1, 2, 3]), 3);
    }

    #[test]
    fn class_ordering_is_keep_delete_insert() {
        assert!(EdgeClass::Keep < EdgeClass::Delete);
        assert!(EdgeClass::Delete < EdgeClass::Insert);
    }
}
