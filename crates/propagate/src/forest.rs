//! The collection `G(D, A, t, S)` of propagation graphs.
//!
//! Graphs are built bottom-up over `N_Δ` (post-order over the `Nop`
//! skeleton of the update) so that every (vi)-edge weight — the cheapest
//! propagation cost of the child — and every (iv)-edge weight — the
//! minimal inverse size of an inserted fragment — is already memoised when
//! a parent graph is constructed. This single-pass memoisation is what
//! makes the whole construction polynomial.

use crate::cost::CostModel;
use crate::error::PropagateError;
use crate::graph::{build_prop_graph, PropGraph};
use crate::instance::Instance;
use crate::inversion::InversionForest;
use std::collections::HashMap;
use xvu_edit::{output_tree, EditOp};
use xvu_tree::NodeId;

/// All propagation graphs of an instance, plus the auxiliary inversion
/// forests for inserted fragments.
#[derive(Clone, Debug)]
pub struct PropagationForest {
    /// `G_n` per preserved node `n ∈ N_Δ`.
    pub graphs: HashMap<NodeId, PropGraph>,
    /// Cheapest propagation-path cost per preserved node.
    pub costs: HashMap<NodeId, u64>,
    /// Inversion forest per top-level inserted script child (the (iv)-edge
    /// machinery of §3).
    pub inversions: HashMap<NodeId, InversionForest>,
    /// The root of the update (always preserved).
    pub root: NodeId,
}

impl PropagationForest {
    /// Builds all graphs for a validated instance.
    pub fn build(
        inst: &Instance<'_>,
        cost: &CostModel<'_>,
    ) -> Result<PropagationForest, PropagateError> {
        let mut graphs = HashMap::new();
        let mut costs: HashMap<NodeId, u64> = HashMap::new();
        let mut inversions = HashMap::new();

        for n in post_order_nop(inst) {
            // Inversion forests for the inserting children of n.
            let mut inverse_sizes: HashMap<NodeId, u64> = HashMap::new();
            for &c in inst.update.children(n) {
                if inst.update.label(c).op == EditOp::Ins {
                    let fragment = output_tree(&inst.update.subtree(c))
                        .expect("an Ins subtree has a full output");
                    let forest = InversionForest::build(inst.dtd, inst.ann, &fragment, cost)
                        .map_err(|e| match e {
                            // An impossible inversion of user-inserted
                            // content means the update's output was not a
                            // legal view — report it as such.
                            PropagateError::InversionImpossible(node) => {
                                PropagateError::OutputNotAView(format!(
                                    "inserted fragment at {node} has no source completion"
                                ))
                            }
                            other => other,
                        })?;
                    inverse_sizes.insert(c, forest.min_inverse_size());
                    inversions.insert(c, forest);
                }
            }

            let g = build_prop_graph(inst, n, cost, &costs, &inverse_sizes)?;
            let best = g.best_cost().ok_or(PropagateError::NoPropagationPath(n))?;
            costs.insert(n, best);
            graphs.insert(n, g);
        }

        Ok(PropagationForest {
            graphs,
            costs,
            inversions,
            root: inst.update.root(),
        })
    }

    /// The cost of the cheapest schema-compliant side-effect-free
    /// propagation (Theorem 4's optimum).
    pub fn optimal_cost(&self) -> u64 {
        self.costs[&self.root]
    }

    /// Total vertex/edge census across all graphs (diagnostics and the
    /// polynomial-size claims of the paper).
    pub fn census(&self) -> (usize, usize) {
        let v = self.graphs.values().map(|g| g.n_vertices()).sum();
        let e = self.graphs.values().map(|g| g.n_edges()).sum();
        (v, e)
    }
}

/// `N_Δ` in post-order (children before parents).
fn post_order_nop(inst: &Instance<'_>) -> Vec<NodeId> {
    inst.update
        .postorder()
        .filter(|&n| inst.update.label(n).op == EditOp::Nop)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use xvu_dtd::{min_sizes, InsertletPackage};

    #[test]
    fn census_is_polynomial_in_inputs() {
        let fx = fixtures::paper_running_example();
        let inst = Instance::new(&fx.dtd, &fx.ann, &fx.t0, &fx.s0, fx.alpha.len()).unwrap();
        let sizes = min_sizes(&fx.dtd, fx.alpha.len());
        let pkg = InsertletPackage::new();
        let cm = CostModel {
            sizes: &sizes,
            insertlets: &pkg,
        };
        let forest = PropagationForest::build(&inst, &cm).unwrap();
        let (v, e) = forest.census();
        // Generous sanity bound: |V| ≤ (k+1)(ℓ+1)|Q| summed over N_Δ.
        assert!(v > 0 && v < 1000, "vertices: {v}");
        assert!(e > 0 && e < 5000, "edges: {e}");
        assert_eq!(forest.graphs.len(), 4); // N_Δ = {n0, n4, n6, n10}
        assert_eq!(forest.inversions.len(), 3); // d#11, a#12, and c#15
        assert_eq!(forest.optimal_cost(), 14);
    }

    #[test]
    fn inserted_fragment_inverse_sizes() {
        let fx = fixtures::paper_running_example();
        let inst = Instance::new(&fx.dtd, &fx.ann, &fx.t0, &fx.s0, fx.alpha.len()).unwrap();
        let sizes = min_sizes(&fx.dtd, fx.alpha.len());
        let pkg = InsertletPackage::new();
        let cm = CostModel {
            sizes: &sizes,
            insertlets: &pkg,
        };
        let forest = PropagationForest::build(&inst, &cm).unwrap();
        // d#11(c13, c14): minimal inverse d(x,c,x,c) → 5 nodes.
        assert_eq!(
            forest.inversions[&xvu_tree::NodeId(11)].min_inverse_size(),
            5
        );
        // a#12: a leaf, inverse is itself → 1 node.
        assert_eq!(
            forest.inversions[&xvu_tree::NodeId(12)].min_inverse_size(),
            1
        );
    }
}
