//! The collection `G(D, A, t, S)` of propagation graphs.
//!
//! Graphs are built bottom-up over `N_Δ` (post-order over the `Nop`
//! skeleton of the update) so that every (vi)-edge weight — the cheapest
//! propagation cost of the child — and every (iv)-edge weight — the
//! minimal inverse size of an inserted fragment — is already memoised when
//! a parent graph is constructed. This single-pass memoisation is what
//! makes the whole construction polynomial.

use crate::cache::{PropCache, TypingRun};
use crate::cost::CostModel;
use crate::error::PropagateError;
use crate::graph::{build_prop_graph, source_child_run, PropEdge, PropGraph};
use crate::instance::Instance;
use crate::inversion::InversionForest;
use crate::scratch::PropScratch;
use std::sync::Arc;
use xvu_edit::{output_tree, EditOp, ScriptFootprint};
use xvu_tree::{NodeId, SlotIndex, SlotMap};

/// All propagation graphs of an instance, plus the auxiliary inversion
/// forests for inserted fragments.
///
/// All per-node tables are dense [`SlotMap`]s keyed by the *update*
/// tree's arena slots; a snapshot of the update's [`SlotIndex`] keeps the
/// public identifier-based accessors O(1) after the instance is gone.
/// Graphs are held behind [`Arc`] so session caches share them with the
/// forests they populated at zero copy cost.
#[derive(Clone, Debug)]
pub struct PropagationForest {
    /// Update-tree `NodeId → Slot` snapshot backing the accessors.
    index: SlotIndex,
    /// Update-tree `Slot → NodeId` snapshot backing the iterators.
    ids: Vec<NodeId>,
    /// `G_n` per preserved node `n ∈ N_Δ`.
    graphs: SlotMap<Arc<PropGraph>>,
    /// Cheapest propagation-path cost per preserved node.
    costs: SlotMap<u64>,
    /// Inversion forest per top-level inserted script child (the (iv)-edge
    /// machinery of §3).
    inversions: SlotMap<InversionForest>,
    /// One flat arena holding every recorded child word back to back —
    /// the per-node tables below store `(offset, len)` ranges into it, so
    /// snapshotting a node's child words costs zero allocations instead of
    /// two boxed slices per preserved node.
    kids: Vec<NodeId>,
    /// Per preserved node: its source child word at build time, as a range
    /// into [`PropagationForest::kids`]. Graph edges name children
    /// positionally ([`crate::PropEdge`]); these snapshots resolve `tpos`
    /// back to identifiers after the instance is gone (the counting walk
    /// has no instance in scope).
    t_kids: SlotMap<(u32, u32)>,
    /// Per preserved node: its script child word at build time (`spos`
    /// resolution, same story).
    s_kids: SlotMap<(u32, u32)>,
    /// The root of the update (always preserved).
    pub root: NodeId,
}

impl PropagationForest {
    /// Builds all graphs for a validated instance.
    pub fn build(
        inst: &Instance<'_>,
        cost: &CostModel<'_>,
    ) -> Result<PropagationForest, PropagateError> {
        Self::build_with(inst, cost, None, None, &mut PropScratch::new(), None)
    }

    /// Cache-aware build: like [`PropagationForest::build`], but for every
    /// preserved node that `fp` marks clean (subtree entirely `Nop`), the
    /// graph is taken from — or, on a miss, built once and stored into —
    /// the session's [`PropCache`]. Nodes inside the footprint are always
    /// rebuilt (their graphs depend on the update); their typing runs,
    /// which depend only on the source, still go through the memo.
    ///
    /// The produced forest is structurally identical to an uncached
    /// [`PropagationForest::build`] of the same instance: a cache hit
    /// returns exactly the graph a fresh build would construct, because
    /// construction is deterministic in the node's (unchanged) source
    /// subtree.
    pub(crate) fn build_with(
        inst: &Instance<'_>,
        cost: &CostModel<'_>,
        mut cache: Option<&mut PropCache>,
        fp: Option<&ScriptFootprint>,
        scratch: &mut PropScratch,
        mut typing_ns: Option<&mut u64>,
    ) -> Result<PropagationForest, PropagateError> {
        let update = inst.update;
        let mut graphs: SlotMap<Arc<PropGraph>> = SlotMap::with_capacity(update.size());
        let mut costs: SlotMap<u64> = SlotMap::with_capacity(update.size());
        let mut inversions = SlotMap::with_capacity(update.size());
        let mut kids: Vec<NodeId> = Vec::new();
        let mut t_kids: SlotMap<(u32, u32)> = SlotMap::with_capacity(update.size());
        let mut s_kids: SlotMap<(u32, u32)> = SlotMap::with_capacity(update.size());
        // Accumulated across nodes: every inserting child has exactly one
        // parent, so entries never collide and one table serves all
        // `build_prop_graph` calls.
        let mut inverse_sizes: SlotMap<u64> = SlotMap::with_capacity(update.size());

        // `N_Δ` in post-order (children before parents), so every
        // (vi)-edge weight is memoised before its parent's graph.
        for n in update.postorder() {
            if update.label(n).op != EditOp::Nop {
                continue;
            }
            let nslot = update.slot(n).expect("preserved node in update");
            // Inversion forests for the inserting children of n. Clean
            // nodes have none — inserted fragments only exist inside the
            // footprint, so this work is naturally skipped outside it.
            for &c in update.children(n) {
                if update.label(c).op == EditOp::Ins {
                    let fragment =
                        output_tree(&update.subtree(c)).expect("an Ins subtree has a full output");
                    let forest =
                        InversionForest::build_with(inst.dtd, inst.ann, &fragment, cost, scratch)
                            .map_err(|e| match e {
                            // An impossible inversion of user-inserted
                            // content means the update's output was not a
                            // legal view — report it as such.
                            PropagateError::InversionImpossible(node) => {
                                PropagateError::OutputNotAView(format!(
                                    "inserted fragment at {node} has no source completion"
                                ))
                            }
                            other => other,
                        })?;
                    let cslot = update.slot(c).expect("script child in update");
                    inverse_sizes.insert(cslot, forest.min_inverse_size());
                    inversions.insert(cslot, forest);
                }
            }

            // A preserved node is a visible source node, so it has a slot
            // in the session document the cache is keyed by.
            let src_slot = inst.source.slot(n).expect("preserved node in source");
            let clean = fp.is_some_and(|f| f.is_clean(nslot));
            let cached = if clean {
                cache.as_deref_mut().and_then(|c| c.graph(src_slot))
            } else {
                None
            };
            let (g, best) = match cached {
                Some((g, best)) => (g, best),
                None => {
                    let t0 = typing_ns.is_some().then(std::time::Instant::now);
                    let run: TypingRun = match cache.as_deref_mut() {
                        Some(c) => c.run_or_compute(src_slot, || source_child_run(inst, n)),
                        None => source_child_run(inst, n).map(Arc::from),
                    };
                    if let (Some(acc), Some(t0)) = (typing_ns.as_deref_mut(), t0) {
                        *acc += t0.elapsed().as_nanos() as u64;
                    }
                    let g = build_prop_graph(
                        inst,
                        n,
                        cost,
                        &costs,
                        &inverse_sizes,
                        run.as_deref(),
                        scratch,
                    )?;
                    let best = g
                        .best_cost_with(&mut scratch.graph)
                        .ok_or(PropagateError::NoPropagationPath(n))?;
                    let g = Arc::new(g);
                    if clean {
                        if let Some(c) = cache.as_deref_mut() {
                            c.store_graph(src_slot, Arc::clone(&g), best);
                        }
                    }
                    (g, best)
                }
            };
            costs.insert(nslot, best);
            graphs.insert(nslot, g);
            let t_range = push_kids(&mut kids, inst.source.children(n));
            t_kids.insert(nslot, t_range);
            let s_range = push_kids(&mut kids, update.children(n));
            s_kids.insert(nslot, s_range);
        }

        Ok(PropagationForest {
            index: update.slot_index().clone(),
            ids: update.slots().map(|s| update.id_at(s)).collect(),
            graphs,
            costs,
            inversions,
            kids,
            t_kids,
            s_kids,
            root: update.root(),
        })
    }

    /// The propagation graph `G_n` of preserved node `n`, if `n ∈ N_Δ`.
    pub fn graph(&self, n: NodeId) -> Option<&PropGraph> {
        self.index
            .slot(n)
            .and_then(|s| self.graphs.get(s))
            .map(Arc::as_ref)
    }

    /// The cheapest propagation-path cost of preserved node `n`.
    pub fn cost(&self, n: NodeId) -> Option<u64> {
        self.index.slot(n).and_then(|s| self.costs.get(s)).copied()
    }

    /// The inversion forest of inserting script child `n`.
    pub fn inversion(&self, n: NodeId) -> Option<&InversionForest> {
        self.index.slot(n).and_then(|s| self.inversions.get(s))
    }

    /// The source child word of preserved node `n` at build time (`tpos`
    /// resolution for [`crate::PropEdge`]).
    pub fn source_children(&self, n: NodeId) -> Option<&[NodeId]> {
        self.index
            .slot(n)
            .and_then(|s| self.t_kids.get(s))
            .map(|&(off, len)| &self.kids[off as usize..off as usize + len as usize])
    }

    /// The script child word of preserved node `n` at build time (`spos`
    /// resolution for [`crate::PropEdge`]).
    pub fn script_children(&self, n: NodeId) -> Option<&[NodeId]> {
        self.index
            .slot(n)
            .and_then(|s| self.s_kids.get(s))
            .map(|&(off, len)| &self.kids[off as usize..off as usize + len as usize])
    }

    /// Resolves the child a positional edge of `G_n` consumes back to its
    /// identifier (`None` for (i)-edges, which consume no child, and for
    /// positions outside `n`'s recorded child words).
    pub fn resolve_child(&self, n: NodeId, edge: &PropEdge) -> Option<NodeId> {
        match *edge {
            PropEdge::InsInvisible(_) => None,
            PropEdge::DelInvisible { tpos }
            | PropEdge::NopInvisible { tpos, .. }
            | PropEdge::DelVisible { tpos }
            | PropEdge::NopVisible { tpos, .. } => {
                self.source_children(n)?.get(tpos as usize).copied()
            }
            PropEdge::InsVisible { spos } => self.script_children(n)?.get(spos as usize).copied(),
        }
    }

    /// Iterates over `(n, G_n)` for every preserved node, in update-arena
    /// order.
    pub fn graphs(&self) -> impl Iterator<Item = (NodeId, &PropGraph)> {
        self.graphs
            .iter()
            .map(|(s, g)| (self.ids[s.index()], g.as_ref()))
    }

    /// Iterates over the inversion forests of all inserting script
    /// children, in update-arena order.
    pub fn inversions(&self) -> impl Iterator<Item = (NodeId, &InversionForest)> {
        self.inversions
            .iter()
            .map(|(s, f)| (self.ids[s.index()], f))
    }

    /// Number of preserved nodes (`|N_Δ|` — one graph each).
    pub fn preserved_len(&self) -> usize {
        self.graphs.len()
    }

    /// Number of inserting script children with an inversion forest.
    pub fn inversion_len(&self) -> usize {
        self.inversions.len()
    }

    /// Replaces (or adds) the graph of `n`. Test support: lets corruption
    /// scenarios (goal-less graphs, dangling children) be injected.
    #[cfg(test)]
    pub(crate) fn insert_graph(&mut self, n: NodeId, g: PropGraph) {
        let s = self.index.slot(n).expect("node in update tree");
        self.graphs.insert(s, Arc::new(g));
    }

    /// Removes the graph of `n`. Test support, like
    /// [`PropagationForest::insert_graph`].
    #[cfg(test)]
    pub(crate) fn remove_graph(&mut self, n: NodeId) -> Option<Arc<PropGraph>> {
        self.graphs.remove(self.index.slot(n)?)
    }

    /// The cost of the cheapest schema-compliant side-effect-free
    /// propagation (Theorem 4's optimum).
    pub fn optimal_cost(&self) -> u64 {
        self.cost(self.root).expect("root is always preserved")
    }

    /// Total vertex/edge census across all graphs (diagnostics and the
    /// polynomial-size claims of the paper).
    pub fn census(&self) -> (usize, usize) {
        let v = self.graphs.values().map(|g| g.n_vertices()).sum();
        let e = self.graphs.values().map(|g| g.n_edges()).sum();
        (v, e)
    }
}

/// Appends one child word to the flat pool and returns its
/// `(offset, len)` range.
fn push_kids(kids: &mut Vec<NodeId>, word: &[NodeId]) -> (u32, u32) {
    let off = u32::try_from(kids.len()).expect("child pool fits in u32");
    let len = u32::try_from(word.len()).expect("child word fits in u32");
    kids.extend_from_slice(word);
    (off, len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use xvu_dtd::{min_sizes, InsertletPackage};

    #[test]
    fn census_is_polynomial_in_inputs() {
        let fx = fixtures::paper_running_example();
        let inst = Instance::new(&fx.dtd, &fx.ann, &fx.t0, &fx.s0, fx.alpha.len()).unwrap();
        let sizes = min_sizes(&fx.dtd, fx.alpha.len());
        let pkg = InsertletPackage::new();
        let cm = CostModel {
            sizes: &sizes,
            insertlets: &pkg,
        };
        let forest = PropagationForest::build(&inst, &cm).unwrap();
        let (v, e) = forest.census();
        // Generous sanity bound: |V| ≤ (k+1)(ℓ+1)|Q| summed over N_Δ.
        assert!(v > 0 && v < 1000, "vertices: {v}");
        assert!(e > 0 && e < 5000, "edges: {e}");
        assert_eq!(forest.preserved_len(), 4); // N_Δ = {n0, n4, n6, n10}
        assert_eq!(forest.inversion_len(), 3); // d#11, a#12, and c#15
        assert_eq!(forest.optimal_cost(), 14);
    }

    #[test]
    fn inserted_fragment_inverse_sizes() {
        let fx = fixtures::paper_running_example();
        let inst = Instance::new(&fx.dtd, &fx.ann, &fx.t0, &fx.s0, fx.alpha.len()).unwrap();
        let sizes = min_sizes(&fx.dtd, fx.alpha.len());
        let pkg = InsertletPackage::new();
        let cm = CostModel {
            sizes: &sizes,
            insertlets: &pkg,
        };
        let forest = PropagationForest::build(&inst, &cm).unwrap();
        // d#11(c13, c14): minimal inverse d(x,c,x,c) → 5 nodes.
        let inv = |n: u64| forest.inversion(xvu_tree::NodeId(n)).unwrap();
        assert_eq!(inv(11).min_inverse_size(), 5);
        // a#12: a leaf, inverse is itself → 1 node.
        assert_eq!(inv(12).min_inverse_size(), 1);
    }
}
