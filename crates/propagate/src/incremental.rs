//! Incremental revalidation and cross-view effect analysis.
//!
//! * [`revalidate_output`] — schema-checks the output of a script in time
//!   proportional to the *changed* part: only nodes whose child word can
//!   have changed (parents of non-`Nop` children, and inserted subtrees)
//!   are re-checked, in the spirit of incremental validation ([13] in the
//!   paper). Assumes the input tree was valid.
//! * [`cross_view_effect`] — the paper's future-work question about
//!   multiple views: given a propagation for view `A1`, compute the
//!   editing script a *different* view `A2` observes. Persistent
//!   identifiers make this an exact diff.

use crate::error::PropagateError;
use xvu_dtd::Dtd;
use xvu_edit::{diff, input_tree, output_tree, script_footprint, validate_script, EditOp, Script};
use xvu_tree::{NodeId, Sym};
use xvu_view::{extract_view, Annotation};

/// Validates `Out(script)` against `dtd`, assuming `In(script)` is valid.
///
/// Re-checks exactly the script's footprint
/// ([`xvu_edit::script_footprint`]):
/// * every node with at least one non-`Nop` child (its child word
///   changed), and
/// * every node inside an inserted subtree (entirely new material).
///
/// Deleted subtrees are skipped *as subtrees* — none of their nodes exist
/// in the output. The script grammar requires every descendant of a `Del`
/// node to delete (whole subtrees are removed); a malformed script whose
/// deleted subtree contains a non-`Del` node is rejected with the
/// underlying [`xvu_edit::EditError`] instead of being validated against
/// an output tree it no longer belongs to.
///
/// Returns the first offending node, like [`Dtd::validate`].
pub fn revalidate_output(dtd: &Dtd, script: &Script) -> Result<(), PropagateError> {
    validate_script(script).map_err(PropagateError::Edit)?;
    if script.label(script.root()).op == EditOp::Del {
        return Err(PropagateError::NotAPropagation(
            "script output is empty".to_owned(),
        ));
    }
    // Each changed node's output child word is read straight off the
    // script (its non-`Del` children) — the output tree is never
    // materialised. The footprint lists the changed nodes in document
    // order, so the *first* offending node is the one reported, like
    // `Dtd::validate`.
    for &n in script_footprint(script).changed() {
        let word: Vec<Sym> = script
            .children(n)
            .iter()
            .filter(|&&c| script.label(c).op != EditOp::Del)
            .map(|&c| script.label(c).label)
            .collect();
        if !dtd.content_model(script.label(n).label).accepts(&word) {
            return Err(PropagateError::NotAPropagation(format!(
                "incremental validation failed at node {n}"
            )));
        }
    }
    Ok(())
}

/// Number of nodes [`revalidate_output`] actually checks — for tests and
/// diagnostics of the incremental saving. Deleted subtrees contribute
/// nothing, whatever their contents.
pub fn revalidation_workload(script: &Script) -> usize {
    script_footprint(script).changed().len()
}

/// Computes the update that a *second* view `other` observes when
/// `propagation` is applied to the source: the exact editing script from
/// `other(In)` to `other(Out)`, matched by persistent identifiers.
///
/// Side-effect freedom is always relative to one view; this is the tool
/// to quantify what a propagation chosen for view `A1` does to the users
/// of view `A2` (the paper's multi-view future work).
pub fn cross_view_effect(
    other: &Annotation,
    propagation: &Script,
) -> Result<Script, PropagateError> {
    let input = input_tree(propagation)
        .ok_or_else(|| PropagateError::NotAPropagation("script input is empty".to_owned()))?;
    let out = output_tree(propagation)
        .ok_or_else(|| PropagateError::NotAPropagation("script output is empty".to_owned()))?;
    let v_before = extract_view(other, &input);
    let v_after = extract_view(other, &out);
    diff(&v_before, &v_after).map_err(PropagateError::Edit)
}

/// Convenience: the set of identifiers the second view sees changing
/// (non-`Nop` nodes of [`cross_view_effect`]).
pub fn cross_view_touched(
    other: &Annotation,
    propagation: &Script,
) -> Result<Vec<NodeId>, PropagateError> {
    let effect = cross_view_effect(other, propagation)?;
    Ok(effect
        .preorder()
        .filter(|&n| effect.label(n).op != EditOp::Nop)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::{propagate, Config};
    use crate::fixtures;
    use crate::instance::Instance;
    use xvu_dtd::InsertletPackage;
    use xvu_edit::cost;
    use xvu_view::parse_annotation;

    #[test]
    fn incremental_agrees_with_full_validation_on_sound_propagation() {
        let fx = fixtures::paper_running_example();
        let inst = Instance::new(&fx.dtd, &fx.ann, &fx.t0, &fx.s0, fx.alpha.len()).unwrap();
        let prop = propagate(&inst, &InsertletPackage::new(), &Config::default()).unwrap();
        revalidate_output(&fx.dtd, &prop.script).unwrap();
        // and it inspects strictly fewer nodes than the whole document
        let out = xvu_edit::output_tree(&prop.script).unwrap();
        assert!(revalidation_workload(&prop.script) < out.size());
    }

    #[test]
    fn incremental_catches_violations() {
        let mut fx = fixtures::paper_running_example();
        // delete only a1: r's word becomes b d a c d — invalid.
        let bad = xvu_edit::parse_script(
            &mut fx.alpha,
            "nop:r#0(del:a#1, nop:b#2, nop:d#3(nop:a#7, nop:c#8), nop:a#4, nop:c#5, \
             nop:d#6(nop:b#9, nop:c#10))",
        )
        .unwrap();
        let err = revalidate_output(&fx.dtd, &bad).unwrap_err();
        assert!(matches!(err, PropagateError::NotAPropagation(_)));
    }

    #[test]
    fn deleted_subtrees_are_skipped_whole() {
        // Regression: a non-`Del` node nested inside a deleted subtree is
        // not part of the output tree. The old preorder walk still
        // descended into it and validated it against the output (panicking
        // on the missing node); deleted subtrees must be skipped whole and
        // the malformed shape rejected with the grammar's own error.
        let mut fx = fixtures::paper_running_example();
        // `ins:c#30` under `del:d#3` violates Del-closure: the script
        // grammar only deletes whole subtrees.
        let bad = xvu_edit::parse_script(
            &mut fx.alpha,
            "nop:r#0(nop:a#1, nop:b#2, del:d#3(ins:c#30, nop:a#7, nop:c#8), nop:a#4, \
             nop:c#5, nop:d#6(nop:b#9, nop:c#10))",
        )
        .unwrap();
        let err = revalidate_output(&fx.dtd, &bad).unwrap_err();
        assert!(
            matches!(
                err,
                PropagateError::Edit(xvu_edit::EditError::DelClosureViolated(_))
            ),
            "{err:?}"
        );
        // and the workload metric never counts nodes inside deleted
        // subtrees, however deep the nesting
        assert_eq!(revalidation_workload(&bad), 1); // only the root r#0
                                                    // a well-formed deep deletion revalidates only the cut point
        let good = xvu_edit::parse_script(
            &mut fx.alpha,
            "nop:r#0(del:a#1, del:b#2, del:d#3(del:a#7, del:c#8), nop:a#4, \
             nop:c#5, nop:d#6(nop:b#9, nop:c#10))",
        )
        .unwrap();
        revalidate_output(&fx.dtd, &good).unwrap();
        assert_eq!(revalidation_workload(&good), 1);
    }

    #[test]
    fn first_offending_node_in_document_order_is_reported() {
        // Both d-subtrees become invalid (((a+b).c)* needs a/b before c);
        // like `Dtd::validate`, the error names the first one, d#3.
        let mut fx = fixtures::paper_running_example();
        let bad = xvu_edit::parse_script(
            &mut fx.alpha,
            "nop:r#0(nop:a#1, nop:b#2, nop:d#3(del:a#7, nop:c#8), nop:a#4, nop:c#5, \
             nop:d#6(del:b#9, nop:c#10))",
        )
        .unwrap();
        let err = revalidate_output(&fx.dtd, &bad).unwrap_err();
        assert!(
            matches!(&err, PropagateError::NotAPropagation(m) if m.contains("n3")),
            "{err:?}"
        );
    }

    #[test]
    fn footprint_agrees_with_reference_walk_on_nested_scripts() {
        // The "changed child-word" analysis used to live as a bespoke walk
        // inside this module; it is now `xvu_edit::script_footprint`. This
        // pins the factored-out API against a local reimplementation of
        // the original walk, over nested ins/del shapes.
        fn reference(script: &Script) -> Vec<NodeId> {
            let resolve = |id| script.slot(id).expect("script child in script");
            let mut stack = vec![resolve(script.root())];
            let mut checked = Vec::new();
            while let Some(s) = stack.pop() {
                let node = script.node_at(s);
                if node.label.op == EditOp::Del {
                    continue;
                }
                if node.label.op == EditOp::Ins
                    || node
                        .children
                        .iter()
                        .any(|&c| script.label(c).op != EditOp::Nop)
                {
                    checked.push(node.id);
                }
                stack.extend(node.children.iter().rev().map(|&c| resolve(c)));
            }
            checked
        }

        let mut alpha = xvu_tree::Alphabet::new();
        let terms = [
            // identity
            "nop:r#0(nop:a#1(nop:b#2), nop:c#3)",
            // the paper's S0
            "nop:r#0(del:a#1, del:d#3(del:c#8), nop:a#4, \
             ins:d#11(ins:c#13, ins:c#14), ins:a#12, nop:d#6(nop:c#10, ins:c#15))",
            // deep nested deletes: only the cut-point parent is checked
            "nop:r#0(del:a#1(del:b#2(del:c#3(del:d#4))), nop:e#5)",
            // deep nested inserts: the whole fragment is checked
            "nop:r#0(ins:a#1(ins:b#2(ins:c#3)), nop:e#5)",
            // ins directly under del (malformed closure): skipped whole
            "nop:r#0(del:a#1(ins:b#2, nop:c#3), nop:e#5)",
            // alternating nests
            "nop:r#0(nop:a#1(del:b#2(del:c#3), ins:d#4(ins:e#5)), \
             nop:f#6(nop:g#7(ins:h#8)))",
        ];
        for term in terms {
            let s = xvu_edit::parse_script(&mut alpha, term).unwrap();
            let fp = xvu_edit::script_footprint(&s);
            assert_eq!(fp.changed(), reference(&s).as_slice(), "{term}");
            assert_eq!(revalidation_workload(&s), fp.changed().len(), "{term}");
        }
    }

    #[test]
    fn identity_script_revalidates_for_free() {
        let fx = fixtures::paper_running_example();
        let s = xvu_edit::nop_script(&fx.t0);
        revalidate_output(&fx.dtd, &s).unwrap();
        assert_eq!(revalidation_workload(&s), 0);
    }

    #[test]
    fn cross_view_effect_of_the_paper_propagation() {
        let mut fx = fixtures::paper_running_example();
        let inst = Instance::new(&fx.dtd, &fx.ann, &fx.t0, &fx.s0, fx.alpha.len()).unwrap();
        let prop = propagate(&inst, &InsertletPackage::new(), &Config::default()).unwrap();

        // A fully-transparent second view sees the whole propagation.
        let all = xvu_view::Annotation::all_visible();
        let full_effect = cross_view_effect(&all, &prop.script).unwrap();
        assert_eq!(cost(&full_effect) as u64, prop.cost);

        // The original view sees exactly the user's update shape.
        let own_effect = cross_view_effect(&fx.ann, &prop.script).unwrap();
        assert_eq!(cost(&own_effect), cost(&fx.s0));

        // A view that hides the d-subtrees' contents sees fewer changes.
        let ann2 = parse_annotation(&mut fx.alpha, "hide d a\nhide d b\nhide d c").unwrap();
        let partial = cross_view_effect(&ann2, &prop.script).unwrap();
        assert!(cost(&partial) < cost(&full_effect));
        let touched = cross_view_touched(&ann2, &prop.script).unwrap();
        assert!(!touched.is_empty());
    }
}
