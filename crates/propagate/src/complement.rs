//! Constant-complement propagations (paper §1 discussion).
//!
//! Bancilhon–Spyratos' *constant complement* criterion additionally
//! requires that a propagation has **no effect on the invisible parts** of
//! the document: no hidden node is deleted, none is inserted. The paper
//! notes that "while this approach produces at most one propagation, it
//! may not exist" — which is why the main algorithm instead minimises the
//! invisible impact. This module makes the criterion executable:
//!
//! * [`invisible_impact`] quantifies how a given propagation touches the
//!   hidden part (the paper's "amount of invisible nodes" the cost
//!   minimisation controls);
//! * [`find_complement_preserving`] searches the propagation graphs with
//!   all invisible-mutation edges removed, returning a
//!   complement-preserving propagation iff one exists.

use crate::algorithm::{build_script_from_path, Config};
use crate::cache::PropCache;
use crate::cost::CostModel;
use crate::error::PropagateError;
use crate::forest::PropagationForest;
use crate::graph::{PropEdge, PropGraph};
use crate::instance::Instance;
use crate::pathgraph::PathGraph;
use crate::scratch::PropScratch;
use std::sync::Arc;
use xvu_edit::{EditOp, Script, ScriptFootprint};
use xvu_tree::{NodeId, SlotMap, SlotSet};

/// How a propagation touches the invisible part of the document.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InvisibleImpact {
    /// Hidden source nodes deleted by the propagation.
    pub deleted: usize,
    /// Fresh invisible nodes inserted by the propagation (padding).
    pub inserted: usize,
    /// Hidden source nodes preserved untouched.
    pub preserved: usize,
}

impl InvisibleImpact {
    /// Whether the propagation leaves the complement constant.
    pub fn is_constant_complement(&self) -> bool {
        self.deleted == 0 && self.inserted == 0
    }

    /// Total invisible churn (the quantity `P_min` minimises).
    pub fn churn(&self) -> usize {
        self.deleted + self.inserted
    }
}

/// Measures the invisible impact of a propagation script.
///
/// A script node is *invisible* if it is absent from both the old view
/// (`A(t)`) and the new view (`A(Out(S'))`); since side-effect freedom
/// fixes both views, classifying against the instance's views is exact.
pub fn invisible_impact(inst: &Instance<'_>, script: &Script) -> InvisibleImpact {
    let mut impact = InvisibleImpact::default();
    for n in script.preorder() {
        let visible = inst.view.contains(n) || inst.updated_view.contains(n);
        if visible {
            continue;
        }
        match script.label(n).op {
            EditOp::Del => impact.deleted += 1,
            EditOp::Ins => impact.inserted += 1,
            EditOp::Nop => impact.preserved += 1,
        }
    }
    impact
}

/// Searches for a propagation that never deletes or inserts an invisible
/// node. Returns `Ok(None)` when no such propagation exists (the paper's
/// caveat), `Ok(Some(script))` otherwise.
///
/// The search restricts every propagation graph to the edges that do not
/// mutate the complement: (iii) invisible nop, (v)/(vi) visible
/// delete/nop, and (iv) visible inserts whose fragments invert with zero
/// padding. (A visible delete removes the hidden descendants of the
/// deleted *visible* node with it; under the constant-complement reading
/// used here — and by the cost model — those belong to the deleted
/// visible region, not the untouched complement. Pass the result to
/// [`invisible_impact`] for the strict census.)
pub fn find_complement_preserving(
    inst: &Instance<'_>,
    forest: &PropagationForest,
    cost: &CostModel<'_>,
    cfg: &Config,
) -> Result<Option<Script>, PropagateError> {
    find_complement_preserving_with(inst, forest, cost, cfg, None, None, &mut PropScratch::new())
}

/// Cache-aware [`find_complement_preserving`]: the filtered ("complement")
/// subgraph of every node outside the update footprint is memoised in the
/// session [`PropCache`]. A clean node's restriction is a pure function of
/// its (unchanged) graph, and the identity path — all (iii)/(vi) `Nop`
/// edges — always survives the filter, so clean nodes are feasible by
/// construction.
pub(crate) fn find_complement_preserving_with(
    inst: &Instance<'_>,
    forest: &PropagationForest,
    cost: &CostModel<'_>,
    cfg: &Config,
    mut cache: Option<&mut PropCache>,
    fp: Option<&ScriptFootprint>,
    scratch: &mut PropScratch,
) -> Result<Option<Script>, PropagateError> {
    let update = inst.update;
    let mut filtered: SlotMap<Arc<PropGraph>> = SlotMap::with_capacity(update.size());
    // Restrict graphs bottom-up; a node whose restricted graph has no path
    // poisons its parents' (vi)-edges. Post-order over the update script
    // visits children before parents, so no sorting is needed.
    let mut feasible = SlotSet::with_capacity(update.size());

    for n in update.postorder() {
        let Some(g) = forest.graph(n) else {
            continue;
        };
        let nslot = update.slot(n).expect("preserved node in update");
        // Positional-edge resolution against this node's child words.
        let t_kids = inst.source.children(n);
        let s_kids = update.children(n);
        let clean = fp.is_some_and(|f| f.is_clean(nslot));
        let src_slot = if clean { inst.source.slot(n) } else { None };
        let memo = match (cache.as_deref_mut(), src_slot) {
            (Some(c), Some(s)) => c.complement(s),
            _ => None,
        };
        let fg: Arc<PropGraph> = match memo {
            Some(fg) => {
                // Memoised restrictions exist only for clean nodes, whose
                // identity path survives the filter.
                feasible.insert(nslot);
                fg
            }
            None => {
                let mut fg: PropGraph = PathGraph::new(
                    (0..g.n_vertices() as u32).map(|v| *g.vertex(v)).collect(),
                    g.start(),
                );
                for v in 0..g.n_vertices() as u32 {
                    if g.is_goal(v) {
                        fg.set_goal(v);
                    }
                }
                for (_, e) in g.edges() {
                    let keep = match e.payload {
                        PropEdge::InsInvisible(_) | PropEdge::DelInvisible { .. } => false,
                        PropEdge::NopInvisible { .. } | PropEdge::DelVisible { .. } => true,
                        PropEdge::InsVisible { spos } => {
                            forest
                                .inversion(s_kids[spos as usize])
                                .expect("built forest has an inversion per Ins child")
                                .min_padding()
                                == 0
                        }
                        PropEdge::NopVisible { tpos, .. } => update
                            .slot(t_kids[tpos as usize])
                            .is_some_and(|cs| feasible.contains(cs)),
                    };
                    if keep {
                        fg.add_edge(e.from, e.to, e.weight, e.payload.clone());
                    }
                }
                let node_feasible = fg.best_cost_with(scratch.graph_mut()).is_some();
                if node_feasible {
                    feasible.insert(nslot);
                }
                let fg = Arc::new(fg);
                if let (Some(c), Some(s)) = (cache.as_deref_mut(), src_slot) {
                    debug_assert!(node_feasible, "clean nodes keep their identity path");
                    c.store_complement(s, Arc::clone(&fg));
                }
                fg
            }
        };
        filtered.insert(nslot, fg);
    }

    let root_slot = update.slot(forest.root).expect("root in update");
    if !feasible.contains(root_slot) {
        return Ok(None);
    }

    // Walk the filtered graphs (all remaining edges are
    // complement-preserving; pick cheapest paths for determinism).
    let mut gen = inst.id_gen();
    let mut opt_cache = SlotMap::with_capacity(update.size());
    let script = walk_filtered(
        inst,
        forest,
        &filtered,
        cost,
        cfg,
        forest.root,
        &mut gen,
        &mut opt_cache,
        scratch,
    )?;
    Ok(Some(script))
}

#[allow(clippy::too_many_arguments)]
fn walk_filtered(
    inst: &Instance<'_>,
    forest: &PropagationForest,
    filtered: &SlotMap<Arc<PropGraph>>,
    cost: &CostModel<'_>,
    cfg: &Config,
    n: NodeId,
    gen: &mut xvu_tree::NodeIdGen,
    opt_cache: &mut SlotMap<Arc<PropGraph>>,
    scratch: &mut PropScratch,
) -> Result<Script, PropagateError> {
    let g = &filtered[inst.update.slot(n).expect("preserved node in update")];
    let path = g
        .shortest_path_with(scratch.graph_mut())
        .ok_or(PropagateError::NoPropagationPath(n))?;
    // Reuse the assembler, but recurse through the *filtered* graphs: we
    // construct child scripts ourselves and splice via a custom walk.
    let mut script = build_script_from_path(
        inst, forest, cost, cfg, n, g, &path, gen, opt_cache, None, None, scratch,
    )?;
    // build_script_from_path recursed into the *optimal* child graphs for
    // (vi)-edges, which may use invisible edits. Rebuild those children
    // from the filtered graphs instead.
    let t_kids = inst.source.children(n);
    let child_ids: Vec<NodeId> = path
        .iter()
        .filter_map(|&e| match g.edge(e).payload {
            PropEdge::NopVisible { tpos, .. } => Some(t_kids[tpos as usize]),
            _ => None,
        })
        .collect();
    for child in child_ids {
        let sub = walk_filtered(
            inst, forest, filtered, cost, cfg, child, gen, opt_cache, scratch,
        )?;
        let parent = script.parent(child).expect("child attached under the node");
        let pos = script
            .children(parent)
            .iter()
            .position(|&c| c == child)
            .expect("child present");
        script.detach_subtree(child)?;
        script.attach_subtree(parent, pos, sub)?;
    }
    Ok(script)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::propagate;
    use crate::fixtures;
    use crate::verify::verify_propagation;
    use xvu_dtd::{min_sizes, parse_dtd, InsertletPackage};
    use xvu_edit::parse_script;
    use xvu_tree::{parse_term_with_ids, Alphabet, NodeIdGen};
    use xvu_view::parse_annotation;

    #[test]
    fn impact_of_paper_propagation() {
        let fx = fixtures::paper_running_example();
        let inst = Instance::new(&fx.dtd, &fx.ann, &fx.t0, &fx.s0, fx.alpha.len()).unwrap();
        let prop = propagate(&inst, &InsertletPackage::new(), &Config::default()).unwrap();
        let impact = invisible_impact(&inst, &prop.script);
        // Fig. 7: deletes hidden b2, a7 (inside the deleted d3 group) and
        // c5? — no: c5 is kept (Nop). Deleted hidden: b2, a7. Inserted
        // hidden: padding inside d11's inverse (2), after a12 (1), inside
        // d6 (1) = 4.
        assert_eq!(impact.deleted, 2);
        assert_eq!(impact.inserted, 4);
        assert!(impact.preserved >= 2); // c5 and b9 stay
        assert!(!impact.is_constant_complement());
        assert_eq!(impact.churn(), 6);
    }

    #[test]
    fn complement_preserving_does_not_exist_for_s0() {
        // S0 inserts a d-group whose inverse necessarily pads with hidden
        // nodes — no constant-complement propagation exists.
        let fx = fixtures::paper_running_example();
        let inst = Instance::new(&fx.dtd, &fx.ann, &fx.t0, &fx.s0, fx.alpha.len()).unwrap();
        let sizes = min_sizes(&fx.dtd, fx.alpha.len());
        let pkg = InsertletPackage::new();
        let cm = CostModel {
            sizes: &sizes,
            insertlets: &pkg,
        };
        let forest = PropagationForest::build(&inst, &cm).unwrap();
        let found = find_complement_preserving(&inst, &forest, &cm, &Config::default()).unwrap();
        assert!(found.is_none(), "the paper's caveat: it may not exist");
    }

    #[test]
    fn complement_preserving_exists_when_schema_is_permissive() {
        // hospital-like: inserting a patient needs no hidden padding.
        let mut alpha = Alphabet::new();
        let dtd = parse_dtd(&mut alpha, "r -> (a.h?)*").unwrap();
        let ann = parse_annotation(&mut alpha, "hide r h").unwrap();
        let mut gen = NodeIdGen::new();
        let source = parse_term_with_ids(&mut alpha, &mut gen, "r#0(a#1, h#2)").unwrap();
        let update = parse_script(&mut alpha, "nop:r#0(nop:a#1, ins:a#5)").unwrap();
        let inst = Instance::new(&dtd, &ann, &source, &update, alpha.len()).unwrap();
        let sizes = min_sizes(&dtd, alpha.len());
        let pkg = InsertletPackage::new();
        let cm = CostModel {
            sizes: &sizes,
            insertlets: &pkg,
        };
        let forest = PropagationForest::build(&inst, &cm).unwrap();
        let found = find_complement_preserving(&inst, &forest, &cm, &Config::default())
            .unwrap()
            .expect("a constant-complement propagation exists here");
        verify_propagation(&inst, &found).unwrap();
        let impact = invisible_impact(&inst, &found);
        assert!(impact.is_constant_complement(), "impact: {impact:?}");
        assert_eq!(impact.preserved, 1); // h#2 untouched
    }

    #[test]
    fn identity_update_is_always_constant_complement() {
        let fx = fixtures::paper_running_example();
        let view = xvu_view::extract_view(&fx.ann, &fx.t0);
        let s = xvu_edit::nop_script(&view);
        let inst = Instance::new(&fx.dtd, &fx.ann, &fx.t0, &s, fx.alpha.len()).unwrap();
        let sizes = min_sizes(&fx.dtd, fx.alpha.len());
        let pkg = InsertletPackage::new();
        let cm = CostModel {
            sizes: &sizes,
            insertlets: &pkg,
        };
        let forest = PropagationForest::build(&inst, &cm).unwrap();
        let found = find_complement_preserving(&inst, &forest, &cm, &Config::default())
            .unwrap()
            .expect("identity is trivially complement preserving");
        verify_propagation(&inst, &found).unwrap();
        assert_eq!(xvu_edit::cost(&found), 0);
        assert!(invisible_impact(&inst, &found).is_constant_complement());
    }
}
