//! Document typings Θ and typing-preservation reports (paper §5).
//!
//! The paper proposes selecting propagations "which do not change the
//! types of nodes that are preserved by the update", typing nodes by the
//! states of the (deterministic) automaton validating the parent's child
//! sequence. We strengthen this slightly: types are the states of the
//! **minimised** DFA of the content model — the Myhill–Nerode classes of
//! the left quotient — which are representation-independent (Glushkov vs
//! hand-minimised automata agree) and defined for *every* content model,
//! deterministic or not.
//!
//! [`typing_report`] measures preservation for any script: for every node
//! present in both `In(S')` and `Out(S')`, compare the canonical state
//! reached just before the node in the parent's run.
//! [`Selector::PreferTypePreserving`](crate::Selector) steers the path
//! walk toward edges whose `preserves_type` flag is set (a finer,
//! NFA-state-level heuristic); the report is the ground-truth measurement
//! of what it achieved.

use xvu_automata::Dfa;
use xvu_dtd::Dtd;
use xvu_edit::{input_tree, output_tree, Script};
use xvu_tree::{DocTree, SlotMap};

/// Result of comparing node types between a script's input and output.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TypingReport {
    /// Surviving nodes whose type is unchanged.
    pub preserved: usize,
    /// Surviving nodes whose type changed.
    pub changed: usize,
}

impl TypingReport {
    /// Whether the script preserves the Θ-typing of all surviving nodes.
    pub fn fully_preserved(&self) -> bool {
        self.changed == 0
    }
}

/// Computes the typing report of `script` w.r.t. `dtd`. `alphabet_len`
/// bounds the symbol indices used by the DTD's content models.
pub fn typing_report(dtd: &Dtd, alphabet_len: usize, script: &Script) -> TypingReport {
    let (Some(input), Some(output)) = (input_tree(script), output_tree(script)) else {
        return TypingReport::default();
    };
    // Minimised-DFA cache, indexed densely by symbol.
    let mut dfas: Vec<Option<Dfa>> = Vec::new();
    dfas.resize_with(alphabet_len, || None);
    let tin = type_map(dtd, alphabet_len, &input, &mut dfas);
    let tout = type_map(dtd, alphabet_len, &output, &mut dfas);
    let mut report = TypingReport::default();
    // The two maps are keyed by each tree's own slots; persistent
    // identifiers carry the correspondence between them.
    for (slot_in, &state_in) in tin.iter() {
        let id = input.id_at(slot_in);
        let Some(slot_out) = output.slot(id) else {
            continue;
        };
        let Some(&state_out) = tout.get(slot_out) else {
            continue;
        };
        if state_in == state_out {
            report.preserved += 1;
        } else {
            report.changed += 1;
        }
    }
    report
}

/// Types every non-root node of `t` by the canonical (minimised-DFA)
/// content-model state reached before it in its parent's run, keyed by
/// the node's slot in `t`. Nodes whose run dies (invalid trees) are left
/// untyped.
fn type_map(dtd: &Dtd, alphabet_len: usize, t: &DocTree, dfas: &mut [Option<Dfa>]) -> SlotMap<u32> {
    let mut map = SlotMap::with_capacity(t.size());
    for p in t.preorder() {
        let label = t.label(p);
        let dfa = dfas[label.index()].get_or_insert_with(|| {
            Dfa::determinize(dtd.content_model(label), alphabet_len).minimize()
        });
        let mut q = Some(dfa.start());
        for &c in t.children(p) {
            let Some(state) = q else { break };
            map.insert(t.slot(c).expect("child in tree"), state.0);
            q = dfa.step(state, t.label(c));
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::{propagate, Config};
    use crate::fixtures;
    use crate::instance::Instance;
    use crate::selection::Selector;
    use xvu_dtd::{parse_dtd, InsertletPackage};
    use xvu_edit::{nop_script, parse_script};
    use xvu_tree::{parse_term_with_ids, Alphabet, NodeIdGen};

    #[test]
    fn identity_script_fully_preserves_typing() {
        let fx = fixtures::paper_running_example();
        let s = nop_script(&fx.t0);
        let report = typing_report(&fx.dtd, fx.alpha.len(), &s);
        assert!(report.fully_preserved());
        assert_eq!(report.preserved, fx.t0.size() - 1); // every non-root
    }

    #[test]
    fn paper_propagation_typing_report() {
        let fx = fixtures::paper_running_example();
        let inst = Instance::new(&fx.dtd, &fx.ann, &fx.t0, &fx.s0, fx.alpha.len()).unwrap();
        for sel in [Selector::PreferNop, Selector::PreferTypePreserving] {
            let cfg = Config {
                selector: sel,
                ..Config::default()
            };
            let prop = propagate(&inst, &InsertletPackage::new(), &cfg).unwrap();
            let report = typing_report(&fx.dtd, fx.alpha.len(), &prop.script);
            // Surviving nodes: a4, c5 (under r) and d6 with b9, c10.
            // Under canonical Myhill–Nerode typing the optimal paths keep
            // every survivor's type here.
            assert!(report.fully_preserved(), "selector {sel:?}: {report:?}");
            assert_eq!(report.preserved, 5, "selector {sel:?}");
        }
    }

    #[test]
    fn detects_type_changes() {
        // r → a.b + b.a, both orders allowed; a script swapping sides
        // moves the surviving node to a different state.
        let mut alpha = Alphabet::new();
        let dtd = parse_dtd(&mut alpha, "r -> a.b + b.a").unwrap();
        // Glushkov of a.b + b.a is deterministic (distinct first symbols).
        let mut gen = NodeIdGen::new();
        let _t = parse_term_with_ids(&mut alpha, &mut gen, "r#0(a#1, b#2)").unwrap();
        let s = parse_script(&mut alpha, "nop:r#0(ins:b#5, nop:a#1, del:b#2)").unwrap();
        let report = typing_report(&dtd, alpha.len(), &s);
        // a#1 moved from first (start state) to second position.
        assert_eq!(report.changed, 1);
        assert!(!report.fully_preserved());
    }

    #[test]
    fn typing_is_representation_independent() {
        // Equivalent content models (different automata) give identical
        // reports, because types are minimised-DFA states.
        let mut alpha = Alphabet::new();
        let d1 = parse_dtd(&mut alpha, "r -> (a.b)*").unwrap();
        let d2 = parse_dtd(&mut alpha, "r -> ((a.b)*)*.((a.b)?)").unwrap();
        let mut gen = NodeIdGen::new();
        let _t = parse_term_with_ids(&mut alpha, &mut gen, "r#0(a#1, b#2)").unwrap();
        let s = parse_script(&mut alpha, "nop:r#0(nop:a#1, nop:b#2, ins:a#5, ins:b#6)").unwrap();
        let r1 = typing_report(&d1, alpha.len(), &s);
        let r2 = typing_report(&d2, alpha.len(), &s);
        assert_eq!(r1, r2);
        assert!(r1.fully_preserved());
    }
}
