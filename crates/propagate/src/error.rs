//! Errors for the propagation pipeline.

use std::fmt;
use xvu_dtd::DtdError;
use xvu_edit::EditError;
use xvu_tree::{NodeId, TreeError};

/// Errors raised while validating instances or propagating updates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PropagateError {
    /// The problem instance is ill-formed (details in the message).
    InvalidInstance(String),
    /// The source document violates the DTD.
    SourceNotValid(DtdError),
    /// The update's output is not a legal view (`Out(S) ∉ A(L(D))`).
    OutputNotAView(String),
    /// A view fragment admits no inverse: no source completion exists for
    /// the node's children under the DTD and annotation.
    InversionImpossible(NodeId),
    /// No propagation path exists in the graph of this node (cannot happen
    /// for valid instances, by Theorem 5; reported for corrupted inputs).
    NoPropagationPath(NodeId),
    /// The update inserts a node whose label is invisible under its parent
    /// — its subtree could never appear in a view.
    InsertedInvisibleLabel {
        /// The inserted script node.
        node: NodeId,
    },
    /// Materialising an invisible fragment failed (unsatisfiable label or
    /// witness budget exhausted).
    Materialisation(DtdError),
    /// The candidate script failed verification as a propagation.
    NotAPropagation(String),
    /// A bounded [`crate::SessionPool`] refused to open a session for a
    /// new document key because it already tracks `capacity` documents.
    /// Evict a parked session (or raise the bound) and retry.
    PoolAtCapacity {
        /// The pool's configured document capacity.
        capacity: usize,
    },
    /// Underlying editing-script error.
    Edit(EditError),
    /// Underlying tree error.
    Tree(TreeError),
}

impl fmt::Display for PropagateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PropagateError::InvalidInstance(m) => write!(f, "invalid instance: {m}"),
            PropagateError::SourceNotValid(e) => write!(f, "source document invalid: {e}"),
            PropagateError::OutputNotAView(m) => {
                write!(f, "update output is not a legal view: {m}")
            }
            PropagateError::InversionImpossible(n) => {
                write!(f, "no inverse exists for view fragment rooted at {n}")
            }
            PropagateError::NoPropagationPath(n) => {
                write!(f, "no propagation path in the graph of node {n}")
            }
            PropagateError::InsertedInvisibleLabel { node } => write!(
                f,
                "update inserts node {node} with a label invisible under its parent"
            ),
            PropagateError::Materialisation(e) => {
                write!(f, "cannot materialise invisible fragment: {e}")
            }
            PropagateError::NotAPropagation(m) => write!(f, "not a valid propagation: {m}"),
            PropagateError::PoolAtCapacity { capacity } => {
                write!(f, "session pool at capacity ({capacity} documents)")
            }
            PropagateError::Edit(e) => write!(f, "editing-script error: {e}"),
            PropagateError::Tree(e) => write!(f, "tree error: {e}"),
        }
    }
}

impl std::error::Error for PropagateError {}

impl From<EditError> for PropagateError {
    fn from(e: EditError) -> Self {
        PropagateError::Edit(e)
    }
}

impl From<TreeError> for PropagateError {
    fn from(e: TreeError) -> Self {
        PropagateError::Tree(e)
    }
}

impl From<DtdError> for PropagateError {
    fn from(e: DtdError) -> Self {
        PropagateError::Materialisation(e)
    }
}
