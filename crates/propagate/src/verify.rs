//! Verification of candidate propagations.
//!
//! A script `S'` is a valid answer to an instance iff
//!
//! 1. it is a well-formed editing script with `In(S') = t`;
//! 2. **schema compliant** — `Out(S') ∈ L(D)`;
//! 3. **side-effect free** — `A(Out(S')) = Out(S)` (identifier-sensitive).
//!
//! The propagation algorithm produces scripts satisfying these by
//! construction (Theorem 3); this module re-checks them from first
//! principles, which the test-suite leans on heavily.

use crate::error::PropagateError;
use crate::instance::Instance;
use xvu_edit::{input_tree, output_tree, validate_script, Script};
use xvu_view::extract_view;

/// Checks that `candidate` is a schema-compliant, side-effect-free
/// propagation of the instance's update.
pub fn verify_propagation(inst: &Instance<'_>, candidate: &Script) -> Result<(), PropagateError> {
    validate_script(candidate)?;

    let input = input_tree(candidate)
        .ok_or_else(|| PropagateError::NotAPropagation("empty input tree".to_owned()))?;
    if &input != inst.source {
        return Err(PropagateError::NotAPropagation(
            "In(S') differs from the source document".to_owned(),
        ));
    }

    let out = output_tree(candidate)
        .ok_or_else(|| PropagateError::NotAPropagation("empty output tree".to_owned()))?;
    inst.dtd
        .validate(&out)
        .map_err(|e| PropagateError::NotAPropagation(format!("not schema compliant: {e}")))?;

    let out_view = extract_view(inst.ann, &out);
    if out_view != inst.updated_view {
        return Err(PropagateError::NotAPropagation(
            "side effect: A(Out(S')) differs from Out(S)".to_owned(),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use crate::instance::Instance;
    use xvu_edit::parse_script;

    #[test]
    fn fig7_propagation_verifies() {
        // The paper's Figure 7 script, transcribed literally.
        let mut fx = fixtures::paper_running_example();
        let inst = Instance::new(&fx.dtd, &fx.ann, &fx.t0, &fx.s0, fx.alpha.len()).unwrap();
        let s_prime = parse_script(
            &mut fx.alpha,
            "nop:r#0(del:a#1, del:b#2, del:d#3(del:a#7, del:c#8), nop:a#4, nop:c#5, \
             ins:d#11(ins:a#16, ins:c#13, ins:b#17, ins:c#14), ins:a#12, ins:b#18, \
             nop:d#6(nop:b#9, nop:c#10, ins:a#19, ins:c#15))",
        )
        .unwrap();
        verify_propagation(&inst, &s_prime).unwrap();
        assert_eq!(xvu_edit::cost(&s_prime), 14);
    }

    #[test]
    fn wrong_input_is_rejected() {
        let mut fx = fixtures::paper_running_example();
        let inst = Instance::new(&fx.dtd, &fx.ann, &fx.t0, &fx.s0, fx.alpha.len()).unwrap();
        let s_prime = parse_script(&mut fx.alpha, "nop:r#0(nop:a#1)").unwrap();
        assert!(matches!(
            verify_propagation(&inst, &s_prime),
            Err(PropagateError::NotAPropagation(_))
        ));
    }

    #[test]
    fn schema_violation_is_rejected() {
        // Keep everything but delete only a1 — output r(b,d,…) violates D0.
        let mut fx = fixtures::paper_running_example();
        let inst = Instance::new(&fx.dtd, &fx.ann, &fx.t0, &fx.s0, fx.alpha.len()).unwrap();
        let s_prime = parse_script(
            &mut fx.alpha,
            "nop:r#0(del:a#1, nop:b#2, del:d#3(del:a#7, del:c#8), nop:a#4, nop:c#5, \
             ins:d#11(ins:a#16, ins:c#13, ins:b#17, ins:c#14), ins:a#12, ins:b#18, \
             nop:d#6(nop:b#9, nop:c#10, ins:a#19, ins:c#15))",
        )
        .unwrap();
        let err = verify_propagation(&inst, &s_prime).unwrap_err();
        assert!(matches!(err, PropagateError::NotAPropagation(m) if m.contains("schema")));
    }

    #[test]
    fn side_effect_is_rejected() {
        // Schema-compliant output whose view differs from Out(S):
        // keep a1 and its (b,d) group instead of deleting it.
        let mut fx = fixtures::paper_running_example();
        let inst = Instance::new(&fx.dtd, &fx.ann, &fx.t0, &fx.s0, fx.alpha.len()).unwrap();
        let s_prime = parse_script(
            &mut fx.alpha,
            "nop:r#0(nop:a#1, nop:b#2, nop:d#3(nop:a#7, nop:c#8), nop:a#4, nop:c#5, \
             ins:d#11(ins:a#16, ins:c#13, ins:b#17, ins:c#14), ins:a#12, ins:b#18, \
             nop:d#6(nop:b#9, nop:c#10, ins:a#19, ins:c#15))",
        )
        .unwrap();
        let err = verify_propagation(&inst, &s_prime).unwrap_err();
        assert!(matches!(err, PropagateError::NotAPropagation(m) if m.contains("side effect")));
    }
}
