//! Bounded enumeration of propagations.
//!
//! Theorem 3 states the propagation graphs capture *all* schema-compliant
//! side-effect-free propagations; Theorem 4 the cost-minimal ones. These
//! enumerators materialise concrete scripts from graph paths so tests can
//! exercise both directions on small instances:
//!
//! * every enumerated script must verify as a propagation (soundness);
//! * no enumerated script may beat the claimed optimal cost (optimality);
//! * enumerating the optimal subgraphs yields scripts of exactly the
//!   optimal cost.
//!
//! Enumeration is exponential by nature (the paper proves tight `2^k`
//! bounds) and is capped by count and path length. Inverse fragments for
//! (iv)-edges use the canonical minimal inverse rather than enumerating
//! inverse choices; path-level variety is exhaustive.

use crate::algorithm::Config;
use crate::cost::CostModel;
use crate::error::PropagateError;
use crate::forest::PropagationForest;
use crate::instance::Instance;
use crate::pathgraph::GraphScratch;
use xvu_edit::Script;
use xvu_tree::{NodeId, NodeIdGen};

/// Enumerates up to `cap` cost-minimal propagations (paths of the optimal
/// subgraphs).
pub fn enumerate_optimal_propagations(
    inst: &Instance<'_>,
    cost: &CostModel<'_>,
    forest: &PropagationForest,
    cfg: &Config,
    cap: usize,
) -> Result<Vec<Script>, PropagateError> {
    let mut gen = inst.id_gen();
    enumerate_node(
        inst,
        cost,
        forest,
        cfg,
        forest.root,
        cap,
        usize::MAX,
        true,
        &mut gen,
        &mut GraphScratch::default(),
    )
}

/// Enumerates up to `cap` propagations from the **full** graphs, with at
/// most `max_len` edges per per-node path. Includes non-optimal
/// propagations (longer paths pad the source with extra invisible
/// fragments).
pub fn enumerate_propagations_bounded(
    inst: &Instance<'_>,
    cost: &CostModel<'_>,
    forest: &PropagationForest,
    cfg: &Config,
    cap: usize,
    max_len: usize,
) -> Result<Vec<Script>, PropagateError> {
    let mut gen = inst.id_gen();
    enumerate_node(
        inst,
        cost,
        forest,
        cfg,
        forest.root,
        cap,
        max_len,
        false,
        &mut gen,
        &mut GraphScratch::default(),
    )
}

#[allow(clippy::too_many_arguments)]
fn enumerate_node(
    inst: &Instance<'_>,
    cost: &CostModel<'_>,
    forest: &PropagationForest,
    cfg: &Config,
    n: NodeId,
    cap: usize,
    max_len: usize,
    optimal: bool,
    gen: &mut NodeIdGen,
    scratch: &mut GraphScratch,
) -> Result<Vec<Script>, PropagateError> {
    let full = forest
        .graph(n)
        .ok_or(PropagateError::NoPropagationPath(n))?;
    let graph = if optimal {
        full.optimal_subgraph_with(scratch)
            .ok_or(PropagateError::NoPropagationPath(n))?
    } else {
        full.clone()
    };
    let path_len_bound = if optimal {
        graph.n_edges() + 1
    } else {
        max_len
    };
    let paths = graph.enumerate_paths(cap, path_len_bound);
    let mut scripts = Vec::new();
    for path in paths {
        // A path may recurse into child graphs via (vi)-edges; child
        // enumeration uses the same parameters but we take only the first
        // `needed` variants to respect the cap. For exhaustiveness we
        // substitute child variants one position at a time.
        let variants = expand_path(
            inst, cost, forest, cfg, n, &graph, &path, cap, max_len, optimal, gen, scratch,
        )?;
        for s in variants {
            scripts.push(s);
            if scripts.len() >= cap {
                return Ok(scripts);
            }
        }
    }
    Ok(scripts)
}

/// Expands one path into scripts, taking the cartesian product of child
/// variants for (vi)-edges (capped).
#[allow(clippy::too_many_arguments)]
fn expand_path(
    inst: &Instance<'_>,
    cost: &CostModel<'_>,
    forest: &PropagationForest,
    cfg: &Config,
    n: NodeId,
    graph: &crate::graph::PropGraph,
    path: &[u32],
    cap: usize,
    max_len: usize,
    optimal: bool,
    gen: &mut NodeIdGen,
    scratch: &mut GraphScratch,
) -> Result<Vec<Script>, PropagateError> {
    use crate::graph::PropEdge;
    use xvu_edit::{del_script, ins_script, nop_script, ELabel};
    use xvu_tree::Tree;

    // Per-edge lists of script fragments. All fresh identifiers are drawn
    // from the single shared generator, so fragments across slots (and
    // across recursion levels) never collide within one combination.
    // Positional edges resolve against this node's child words.
    let t_kids = inst.source.children(n);
    let s_kids = inst.update.children(n);
    let mut slots: Vec<Vec<Script>> = Vec::with_capacity(path.len());
    for &e in path {
        let fragments = match graph.edge(e).payload {
            PropEdge::InsInvisible(y) => {
                let frag = cost.insertlets.instantiate(
                    inst.dtd,
                    cost.sizes,
                    y,
                    gen,
                    cfg.witness_budget,
                )?;
                vec![ins_script(&frag)]
            }
            PropEdge::DelInvisible { tpos } | PropEdge::DelVisible { tpos } => {
                vec![del_script(&inst.source.subtree(t_kids[tpos as usize]))]
            }
            PropEdge::NopInvisible { tpos, .. } => {
                vec![nop_script(&inst.source.subtree(t_kids[tpos as usize]))]
            }
            PropEdge::InsVisible { spos } => {
                let inv = forest
                    .inversion(s_kids[spos as usize])
                    .expect("built forest has an inversion per Ins child")
                    .materialize_min(inst.dtd, cost, cfg.selector, gen, cfg.witness_budget)?;
                vec![ins_script(&inv)]
            }
            PropEdge::NopVisible { tpos, .. } => enumerate_node(
                inst,
                cost,
                forest,
                cfg,
                t_kids[tpos as usize],
                cap,
                max_len,
                optimal,
                gen,
                scratch,
            )?,
        };
        slots.push(fragments);
    }

    // Cartesian product over slots, capped. Variants beyond the first in
    // any slot share fresh-id-bearing fragments only within their own
    // combination, so re-id fragments when reused.
    let x = inst.source.label(n);
    let mut combos: Vec<Vec<usize>> = vec![vec![]];
    for slot in &slots {
        let mut next = Vec::new();
        for combo in &combos {
            for v in 0..slot.len() {
                let mut c = combo.clone();
                c.push(v);
                next.push(c);
                if next.len() >= cap {
                    break;
                }
            }
            if next.len() >= cap {
                break;
            }
        }
        combos = next;
    }

    let mut out = Vec::new();
    for combo in combos {
        let mut script: Script = Tree::leaf_with_id(n, ELabel::nop(x));
        let root = script.root();
        let mut ok = true;
        for (slot, &v) in slots.iter().zip(&combo) {
            let frag = &slot[v];
            // Defensive: the shared generator makes collisions impossible;
            // a collision here would indicate a bookkeeping bug upstream.
            if frag.node_ids().any(|id| script.contains(id)) {
                ok = false;
                break;
            }
            let frag = frag.clone();
            let pos = script.children(root).len();
            script.attach_subtree(root, pos, frag)?;
        }
        if ok {
            out.push(script);
            if out.len() >= cap {
                break;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use crate::verify::verify_propagation;
    use xvu_dtd::{min_sizes, InsertletPackage};
    use xvu_edit::cost as script_cost;

    fn setup() -> (fixtures::PaperFixture, xvu_dtd::MinSizes, InsertletPackage) {
        let fx = fixtures::paper_running_example();
        let sizes = min_sizes(&fx.dtd, fx.alpha.len());
        let pkg = InsertletPackage::new();
        (fx, sizes, pkg)
    }

    #[test]
    fn optimal_enumeration_is_sound_and_optimal() {
        let (fx, sizes, pkg) = setup();
        let inst = Instance::new(&fx.dtd, &fx.ann, &fx.t0, &fx.s0, fx.alpha.len()).unwrap();
        let cm = CostModel {
            sizes: &sizes,
            insertlets: &pkg,
        };
        let forest = PropagationForest::build(&inst, &cm).unwrap();
        let cfg = Config::default();
        let scripts = enumerate_optimal_propagations(&inst, &cm, &forest, &cfg, 25).unwrap();
        assert!(!scripts.is_empty());
        for s in &scripts {
            verify_propagation(&inst, s).unwrap();
            assert_eq!(script_cost(s) as u64, forest.optimal_cost());
        }
    }

    #[test]
    fn bounded_full_enumeration_is_sound_and_never_beats_optimal() {
        let (fx, sizes, pkg) = setup();
        let inst = Instance::new(&fx.dtd, &fx.ann, &fx.t0, &fx.s0, fx.alpha.len()).unwrap();
        let cm = CostModel {
            sizes: &sizes,
            insertlets: &pkg,
        };
        let forest = PropagationForest::build(&inst, &cm).unwrap();
        let cfg = Config::default();
        let scripts = enumerate_propagations_bounded(&inst, &cm, &forest, &cfg, 40, 14).unwrap();
        assert!(scripts.len() >= 10, "got {}", scripts.len());
        let mut costs = std::collections::HashSet::new();
        for s in &scripts {
            verify_propagation(&inst, s).unwrap();
            let c = script_cost(s) as u64;
            assert!(c >= forest.optimal_cost());
            costs.insert(c);
        }
        // The full graphs contain non-optimal propagations too.
        assert!(costs.len() > 1, "costs seen: {costs:?}");
    }
}
