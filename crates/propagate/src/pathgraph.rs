//! Generic weighted path graphs.
//!
//! Both of the paper's graph constructions — inversion graphs `H_n`
//! (Section 3) and propagation graphs `G_n` (Section 4) — are directed,
//! edge-weighted graphs with one start vertex, a set of goal vertices, and
//! the same derived notions:
//!
//! * cheapest start→goal path cost (non-negative weights ⇒ Dijkstra),
//! * the **optimal subgraph** induced by all cheapest paths (the paper's
//!   `H*`/`G*`), obtained by keeping edge `(u,v,w)` iff
//!   `dist(start,u) + w + dist(v,goal) = best`,
//! * path counting and bounded enumeration over the optimal subgraph
//!   (which is acyclic — asserted, per the paper's observation),
//! * deterministic greedy path extraction under a pluggable edge
//!   preference.
//!
//! This module implements those once, generically over vertex and edge
//! payload types.
//!
//! # Memory layout
//!
//! Adjacency is stored in **CSR (compressed sparse row)** form: one
//! contiguous `edge_idx` array plus an `offsets` array, derived from the
//! edge list in a single counting pass. Because the pass scans edges in
//! index order, each row lists its edges in insertion order — insertion
//! order is the deterministic tie-break of every selector, so the packing
//! is observationally identical to the jagged `Vec<Vec<u32>>` layout it
//! replaced (and measurably faster: see the `kernel_layouts` bench group).
//! Both the forward and the reverse CSR are built lazily on first use and
//! memoised on the graph; [`PathGraph::add_edge`] invalidates them, so a
//! graph under construction pays nothing until it is first queried.
//!
//! Shortest-path queries accept an optional [`GraphScratch`] — pooled
//! Dijkstra state (distance arrays, predecessor array, binary heap) that
//! is cleared, never freed, between queries, so a warm caller performs no
//! transient heap allocation per query.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::OnceLock;

/// Sentinel distance for unreachable vertices.
pub const UNREACHABLE: u64 = u64::MAX;

/// Sentinel for "no predecessor edge" in [`GraphScratch::pred`].
const EDGE_NONE: u32 = u32::MAX;

/// A directed weighted edge with a payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Edge<E> {
    /// Source vertex index.
    pub from: u32,
    /// Target vertex index.
    pub to: u32,
    /// Non-negative weight.
    pub weight: u64,
    /// Domain payload (edge kind).
    pub payload: E,
}

/// Compressed sparse row adjacency: `edge_idx[offsets[v] .. offsets[v+1]]`
/// lists the edge indices incident to `v`, in edge-insertion order.
#[derive(Clone, Debug)]
struct Csr {
    offsets: Vec<u32>,
    edge_idx: Vec<u32>,
}

impl Csr {
    /// Builds the CSR in one counting pass over the edge list. `end`
    /// selects which endpoint owns the edge (`from` for the forward CSR,
    /// `to` for the reverse). Scanning edges in index order keeps every
    /// row in insertion order.
    fn build<E>(n: usize, edges: &[Edge<E>], end: impl Fn(&Edge<E>) -> u32) -> Csr {
        let mut offsets = vec![0u32; n + 1];
        for e in edges {
            offsets[end(e) as usize + 1] += 1;
        }
        for v in 0..n {
            offsets[v + 1] += offsets[v];
        }
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut edge_idx = vec![0u32; edges.len()];
        for (i, e) in edges.iter().enumerate() {
            let c = &mut cursor[end(e) as usize];
            edge_idx[*c as usize] = i as u32;
            *c += 1;
        }
        Csr { offsets, edge_idx }
    }

    #[inline]
    fn row(&self, v: u32) -> &[u32] {
        &self.edge_idx[self.offsets[v as usize] as usize..self.offsets[v as usize + 1] as usize]
    }
}

/// Reusable shortest-path state: distance arrays, the predecessor array,
/// and the Dijkstra binary heap, cleared — never freed — between queries.
///
/// One scratch serves any number of graphs of any size (buffers are
/// `resize`d per query); a warm scratch makes [`PathGraph::best_cost_with`],
/// [`PathGraph::shortest_path_with`], and
/// [`PathGraph::optimal_subgraph_with`] allocation-free apart from the
/// result values they return. [`crate::PropScratch`] embeds one per
/// session / worker thread.
#[derive(Debug, Default)]
pub struct GraphScratch {
    dist_fwd: Vec<u64>,
    dist_rev: Vec<u64>,
    pred: Vec<u32>,
    heap: BinaryHeap<Reverse<(u64, u32)>>,
}

/// A directed weighted graph with a start vertex and goal vertices.
#[derive(Clone, Debug)]
pub struct PathGraph<V, E> {
    vertices: Vec<V>,
    edges: Vec<Edge<E>>,
    /// Forward CSR, built lazily on first adjacency query.
    fwd: OnceLock<Csr>,
    /// Reverse CSR, built lazily on first `dist_to_goal`-style query —
    /// once per graph, not once per call.
    rev: OnceLock<Csr>,
    start: u32,
    goal: Vec<bool>,
}

impl<V, E> PathGraph<V, E> {
    /// Creates a graph over the given vertices with a start vertex.
    pub fn new(vertices: Vec<V>, start: u32) -> PathGraph<V, E> {
        let n = vertices.len();
        assert!((start as usize) < n, "start vertex out of range");
        PathGraph {
            vertices,
            edges: Vec::new(),
            fwd: OnceLock::new(),
            rev: OnceLock::new(),
            start,
            goal: vec![false; n],
        }
    }

    /// Adds an edge, returning its index. Invalidates the memoised CSRs.
    pub fn add_edge(&mut self, from: u32, to: u32, weight: u64, payload: E) -> u32 {
        assert!(
            (to as usize) < self.vertices.len(),
            "edge target out of range"
        );
        let ix = self.edges.len() as u32;
        self.edges.push(Edge {
            from,
            to,
            weight,
            payload,
        });
        self.fwd.take();
        self.rev.take();
        ix
    }

    /// Marks `v` as a goal vertex.
    pub fn set_goal(&mut self, v: u32) {
        self.goal[v as usize] = true;
    }

    /// The start vertex.
    pub fn start(&self) -> u32 {
        self.start
    }

    /// Whether `v` is a goal.
    pub fn is_goal(&self, v: u32) -> bool {
        self.goal[v as usize]
    }

    /// Number of vertices.
    pub fn n_vertices(&self) -> usize {
        self.vertices.len()
    }

    /// Number of edges.
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// Vertex payload.
    pub fn vertex(&self, v: u32) -> &V {
        &self.vertices[v as usize]
    }

    /// Edge by index.
    pub fn edge(&self, e: u32) -> &Edge<E> {
        &self.edges[e as usize]
    }

    fn fwd_csr(&self) -> &Csr {
        self.fwd
            .get_or_init(|| Csr::build(self.vertices.len(), &self.edges, |e| e.from))
    }

    fn rev_csr(&self) -> &Csr {
        self.rev
            .get_or_init(|| Csr::build(self.vertices.len(), &self.edges, |e| e.to))
    }

    /// Edge indices leaving `v`, in insertion order (a CSR row).
    pub fn out_edges(&self, v: u32) -> &[u32] {
        self.fwd_csr().row(v)
    }

    /// Iterates over all edges with their indices.
    pub fn edges(&self) -> impl Iterator<Item = (u32, &Edge<E>)> {
        self.edges.iter().enumerate().map(|(i, e)| (i as u32, e))
    }

    /// Goal vertices.
    pub fn goals(&self) -> impl Iterator<Item = u32> + '_ {
        self.goal
            .iter()
            .enumerate()
            .filter(|(_, &g)| g)
            .map(|(v, _)| v as u32)
    }

    /// Dijkstra over one CSR direction into caller-owned buffers. With
    /// `reverse`, sources should be the goals and edges are walked
    /// `to → from`. `pred`, when given, records the relaxing edge index
    /// per vertex ([`EDGE_NONE`] = none).
    fn dijkstra_into(
        &self,
        sources: impl Iterator<Item = u32>,
        reverse: bool,
        dist: &mut Vec<u64>,
        heap: &mut BinaryHeap<Reverse<(u64, u32)>>,
        mut pred: Option<&mut Vec<u32>>,
    ) {
        let csr = if reverse {
            self.rev_csr()
        } else {
            self.fwd_csr()
        };
        dist.clear();
        dist.resize(self.vertices.len(), UNREACHABLE);
        if let Some(pred) = pred.as_deref_mut() {
            pred.clear();
            pred.resize(self.vertices.len(), EDGE_NONE);
        }
        heap.clear();
        for s in sources {
            dist[s as usize] = 0;
            heap.push(Reverse((0, s)));
        }
        while let Some(Reverse((d, v))) = heap.pop() {
            if d > dist[v as usize] {
                continue;
            }
            for &e in csr.row(v) {
                let edge = &self.edges[e as usize];
                let to = if reverse { edge.from } else { edge.to };
                let nd = d.saturating_add(edge.weight);
                if nd < dist[to as usize] && nd != UNREACHABLE {
                    dist[to as usize] = nd;
                    if let Some(pred) = pred.as_deref_mut() {
                        pred[to as usize] = e;
                    }
                    heap.push(Reverse((nd, to)));
                }
            }
        }
    }

    /// Dijkstra from the start vertex. Unreachable = [`UNREACHABLE`].
    pub fn dist_from_start(&self) -> Vec<u64> {
        let mut dist = Vec::new();
        let mut heap = BinaryHeap::new();
        self.dijkstra_into(
            std::iter::once(self.start),
            false,
            &mut dist,
            &mut heap,
            None,
        );
        dist
    }

    /// Reverse Dijkstra from all goal vertices: `dist[v]` = cheapest cost
    /// from `v` to any goal. The reverse CSR this walks is memoised on the
    /// graph — built once, on the first call.
    pub fn dist_to_goal(&self) -> Vec<u64> {
        let mut dist = Vec::new();
        let mut heap = BinaryHeap::new();
        self.dijkstra_into(self.goals(), true, &mut dist, &mut heap, None);
        dist
    }

    /// Cost of the cheapest start→goal path, `None` if no goal is
    /// reachable.
    pub fn best_cost(&self) -> Option<u64> {
        self.best_cost_with(&mut GraphScratch::default())
    }

    /// [`PathGraph::best_cost`] over pooled scratch — allocation-free when
    /// the scratch is warm.
    pub fn best_cost_with(&self, s: &mut GraphScratch) -> Option<u64> {
        self.dijkstra_into(
            std::iter::once(self.start),
            false,
            &mut s.dist_fwd,
            &mut s.heap,
            None,
        );
        self.goals()
            .map(|g| s.dist_fwd[g as usize])
            .min()
            .filter(|&c| c != UNREACHABLE)
    }

    /// A cheapest start→goal path as a sequence of edge indices (`None` if
    /// unreachable). Works on cyclic graphs.
    pub fn shortest_path(&self) -> Option<Vec<u32>> {
        self.shortest_path_with(&mut GraphScratch::default())
    }

    /// [`PathGraph::shortest_path`] over pooled scratch; only the returned
    /// path itself is allocated when the scratch is warm.
    pub fn shortest_path_with(&self, s: &mut GraphScratch) -> Option<Vec<u32>> {
        self.dijkstra_into(
            std::iter::once(self.start),
            false,
            &mut s.dist_fwd,
            &mut s.heap,
            Some(&mut s.pred),
        );
        let goal = self
            .goals()
            .filter(|&g| s.dist_fwd[g as usize] != UNREACHABLE)
            .min_by_key(|&g| s.dist_fwd[g as usize])?;
        let mut path = Vec::new();
        let mut cur = goal;
        while cur != self.start {
            let e = s.pred[cur as usize];
            debug_assert_ne!(e, EDGE_NONE, "predecessor on reached vertex");
            path.push(e);
            cur = self.edges[e as usize].from;
        }
        path.reverse();
        Some(path)
    }

    /// The subgraph induced by all cheapest start→goal paths — the paper's
    /// `H*`/`G*`. Vertex indices are preserved (the subgraph keeps the full
    /// vertex table; pruned vertices simply have no incident edges and the
    /// start is unchanged). Returns `None` when no goal is reachable.
    pub fn optimal_subgraph(&self) -> Option<PathGraph<V, E>>
    where
        V: Clone,
        E: Clone,
    {
        self.optimal_subgraph_with(&mut GraphScratch::default())
    }

    /// [`PathGraph::optimal_subgraph`] over pooled scratch: both Dijkstra
    /// passes run in the scratch buffers; only the returned subgraph owns
    /// fresh memory.
    pub fn optimal_subgraph_with(&self, s: &mut GraphScratch) -> Option<PathGraph<V, E>>
    where
        V: Clone,
        E: Clone,
    {
        let GraphScratch {
            dist_fwd,
            dist_rev,
            heap,
            ..
        } = s;
        self.dijkstra_into(std::iter::once(self.start), false, dist_fwd, heap, None);
        self.dijkstra_into(self.goals(), true, dist_rev, heap, None);
        let (ds, dg) = (&*dist_fwd, &*dist_rev);
        let best = self
            .goals()
            .map(|g| ds[g as usize])
            .min()
            .filter(|&c| c != UNREACHABLE)?;
        let mut out = PathGraph::new(self.vertices.clone(), self.start);
        for g in self.goals() {
            // A goal lies on an optimal path iff reaching it costs `best`
            // (continuing past a goal is never optimal: weights into any
            // further goal are ≥ 0 and the path is already complete).
            if ds[g as usize] == best {
                out.set_goal(g);
            }
        }
        for e in &self.edges {
            let (u, v) = (e.from as usize, e.to as usize);
            if ds[u] == UNREACHABLE || dg[v] == UNREACHABLE {
                continue;
            }
            if ds[u].saturating_add(e.weight).saturating_add(dg[v]) == best {
                out.add_edge(e.from, e.to, e.weight, e.payload.clone());
            }
        }
        Some(out)
    }

    /// Whether the graph (restricted to edges present) is acyclic.
    pub fn is_acyclic(&self) -> bool {
        self.topo_order().is_some()
    }

    /// A topological order of the vertices, `None` if cyclic.
    pub fn topo_order(&self) -> Option<Vec<u32>> {
        let csr = self.fwd_csr();
        let n = self.vertices.len();
        let mut indeg = vec![0usize; n];
        for e in &self.edges {
            indeg[e.to as usize] += 1;
        }
        let mut queue: Vec<u32> = (0..n as u32).filter(|&v| indeg[v as usize] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(v) = queue.pop() {
            order.push(v);
            for &e in csr.row(v) {
                let to = self.edges[e as usize].to as usize;
                indeg[to] -= 1;
                if indeg[to] == 0 {
                    queue.push(to as u32);
                }
            }
        }
        (order.len() == n).then_some(order)
    }

    /// Counts start→goal paths, weighting each path by the product of
    /// per-edge `factor`s (saturating `u128`). Requires acyclicity (true
    /// for optimal subgraphs); returns `None` on cyclic graphs, where the
    /// count is infinite.
    pub fn count_paths(&self, mut factor: impl FnMut(&E) -> u128) -> Option<u128> {
        let order = self.topo_order()?;
        let csr = self.fwd_csr();
        let mut ways = vec![0u128; self.vertices.len()];
        ways[self.start as usize] = 1;
        for &v in &order {
            let wv = ways[v as usize];
            if wv == 0 {
                continue;
            }
            for &e in csr.row(v) {
                let edge = &self.edges[e as usize];
                let contrib = wv.saturating_mul(factor(&edge.payload));
                let slot = &mut ways[edge.to as usize];
                *slot = slot.saturating_add(contrib);
            }
        }
        Some(
            self.goals()
                .fold(0u128, |acc, g| acc.saturating_add(ways[g as usize])),
        )
    }

    /// Extracts one start→goal path by repeatedly letting `choose` pick
    /// among the outgoing edges. Intended for **optimal subgraphs**, where
    /// every edge lies on a cheapest path, so any local choice is globally
    /// optimal; the walk stops at the first goal vertex reached.
    ///
    /// `choose` receives the graph and the candidate edge indices and must
    /// return one of them. Returns `None` if a non-goal vertex has no
    /// outgoing edges (impossible in an optimal subgraph).
    pub fn walk(
        &self,
        mut choose: impl FnMut(&PathGraph<V, E>, &[u32]) -> u32,
    ) -> Option<Vec<u32>> {
        let mut path = Vec::new();
        let mut cur = self.start;
        let mut steps = 0usize;
        // In an acyclic optimal subgraph paths are ≤ |E| long; the bound
        // guards against misuse on cyclic graphs.
        let max_steps = self.edges.len() + 1;
        while !self.goal[cur as usize] {
            let outs = self.out_edges(cur);
            if outs.is_empty() || steps > max_steps {
                return None;
            }
            let e = choose(self, outs);
            debug_assert!(
                self.out_edges(cur).contains(&e),
                "selector returned a foreign edge"
            );
            path.push(e);
            cur = self.edges[e as usize].to;
            steps += 1;
        }
        Some(path)
    }

    /// Enumerates start→goal paths as edge-index sequences, up to `cap`
    /// paths and `max_len` edges per path (the length bound makes
    /// enumeration terminate even on cyclic full graphs, matching the
    /// paper's observation that non-optimal propagations can be arbitrarily
    /// long).
    pub fn enumerate_paths(&self, cap: usize, max_len: usize) -> Vec<Vec<u32>> {
        let mut result = Vec::new();
        let mut stack = Vec::new();
        self.enum_rec(self.start, &mut stack, &mut result, cap, max_len);
        result
    }

    fn enum_rec(
        &self,
        v: u32,
        stack: &mut Vec<u32>,
        result: &mut Vec<Vec<u32>>,
        cap: usize,
        max_len: usize,
    ) {
        if result.len() >= cap {
            return;
        }
        if self.goal[v as usize] {
            result.push(stack.clone());
            if result.len() >= cap {
                return;
            }
            // goals may have continuations in full graphs; keep exploring
        }
        if stack.len() >= max_len {
            return;
        }
        for &e in self.out_edges(v) {
            stack.push(e);
            self.enum_rec(self.edges[e as usize].to, stack, result, cap, max_len);
            stack.pop();
            if result.len() >= cap {
                return;
            }
        }
    }

    /// Sum of edge weights along a path (saturating).
    pub fn path_cost(&self, path: &[u32]) -> u64 {
        path.iter().fold(0u64, |acc, &e| {
            acc.saturating_add(self.edges[e as usize].weight)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Diamond: 0 → {1, 2} → 3, with an expensive detour 0→3.
    fn diamond() -> PathGraph<&'static str, char> {
        let mut g = PathGraph::new(vec!["s", "a", "b", "t"], 0);
        g.add_edge(0, 1, 1, 'p');
        g.add_edge(0, 2, 1, 'q');
        g.add_edge(1, 3, 1, 'r');
        g.add_edge(2, 3, 1, 's');
        g.add_edge(0, 3, 5, 'x');
        g.set_goal(3);
        g
    }

    #[test]
    fn dijkstra_and_best_cost() {
        let g = diamond();
        assert_eq!(g.best_cost(), Some(2));
        let ds = g.dist_from_start();
        assert_eq!(ds, vec![0, 1, 1, 2]);
        let dg = g.dist_to_goal();
        assert_eq!(dg, vec![2, 1, 1, 0]);
    }

    #[test]
    fn csr_rows_preserve_insertion_order() {
        let g = diamond();
        // vertex 0 inserted edges 0 ('p'), 1 ('q'), 4 ('x') in that order
        assert_eq!(g.out_edges(0), &[0, 1, 4]);
        assert_eq!(g.out_edges(1), &[2]);
        assert_eq!(g.out_edges(3), &[] as &[u32]);
    }

    #[test]
    fn reverse_csr_is_memoised_and_invalidated_by_add_edge() {
        let mut g = diamond();
        assert_eq!(g.dist_to_goal(), vec![2, 1, 1, 0]);
        // second call answers from the memoised reverse CSR
        assert_eq!(g.dist_to_goal(), vec![2, 1, 1, 0]);
        // mutation invalidates the memo: the cheaper bypass must be seen
        g.add_edge(0, 3, 1, 'z');
        assert_eq!(g.dist_to_goal(), vec![1, 1, 1, 0]);
        assert_eq!(g.best_cost(), Some(1));
    }

    #[test]
    fn scratch_reuse_matches_fresh_queries() {
        let mut s = GraphScratch::default();
        let g = diamond();
        // warm the scratch on one graph, then reuse it on another shape
        assert_eq!(g.best_cost_with(&mut s), Some(2));
        assert_eq!(g.shortest_path_with(&mut s), g.shortest_path());
        let mut h: PathGraph<(), ()> = PathGraph::new(vec![(), ()], 0);
        h.set_goal(1);
        assert_eq!(h.best_cost_with(&mut s), None);
        let opt = g.optimal_subgraph_with(&mut s).unwrap();
        assert_eq!(opt.n_edges(), 4);
        assert_eq!(opt.best_cost_with(&mut s), Some(2));
    }

    #[test]
    fn optimal_subgraph_drops_expensive_edge() {
        let g = diamond();
        let opt = g.optimal_subgraph().unwrap();
        assert_eq!(opt.n_edges(), 4); // the weight-5 edge is pruned
        assert!(opt.is_acyclic());
        assert_eq!(opt.best_cost(), Some(2));
    }

    #[test]
    fn count_paths_in_optimal_subgraph() {
        let g = diamond().optimal_subgraph().unwrap();
        assert_eq!(g.count_paths(|_| 1), Some(2));
        // multiplicative factors
        assert_eq!(g.count_paths(|&c| if c == 'p' { 3 } else { 1 }), Some(4));
    }

    #[test]
    fn count_paths_on_cyclic_graph_is_none() {
        let mut g: PathGraph<(), ()> = PathGraph::new(vec![(), ()], 0);
        g.add_edge(0, 1, 1, ());
        g.add_edge(1, 0, 1, ());
        g.set_goal(1);
        assert!(g.count_paths(|_| 1).is_none());
        assert!(!g.is_acyclic());
        // but shortest path still works
        assert_eq!(g.shortest_path().unwrap().len(), 1);
    }

    #[test]
    fn shortest_path_reconstructs_edges() {
        let g = diamond();
        let p = g.shortest_path().unwrap();
        assert_eq!(g.path_cost(&p), 2);
        assert_eq!(p.len(), 2);
        assert_eq!(g.edge(p[0]).from, 0);
        assert_eq!(g.edge(p[1]).to, 3);
    }

    #[test]
    fn walk_with_preference() {
        let g = diamond().optimal_subgraph().unwrap();
        // prefer edges labelled 'q'
        let p = g
            .walk(|g, outs| {
                *outs
                    .iter()
                    .find(|&&e| g.edge(e).payload == 'q')
                    .unwrap_or(&outs[0])
            })
            .unwrap();
        assert_eq!(g.edge(p[0]).payload, 'q');
        assert_eq!(g.path_cost(&p), 2);
    }

    #[test]
    fn walk_fails_on_dead_end() {
        let mut g: PathGraph<(), ()> = PathGraph::new(vec![(), (), ()], 0);
        g.add_edge(0, 1, 1, ());
        g.set_goal(2); // unreachable
        assert!(g.walk(|_, outs| outs[0]).is_none());
    }

    #[test]
    fn enumerate_paths_respects_caps() {
        let g = diamond();
        let all = g.enumerate_paths(10, 10);
        assert_eq!(all.len(), 3); // two cheap, one direct
        let capped = g.enumerate_paths(2, 10);
        assert_eq!(capped.len(), 2);
        let short = g.enumerate_paths(10, 1);
        assert_eq!(short.len(), 1); // only the direct 0→3 edge fits
    }

    #[test]
    fn enumerate_on_cyclic_graph_terminates() {
        let mut g: PathGraph<(), char> = PathGraph::new(vec![(), ()], 0);
        g.add_edge(0, 0, 1, 'l');
        g.add_edge(0, 1, 1, 'f');
        g.set_goal(1);
        let paths = g.enumerate_paths(100, 4);
        // l^k f for k in 0..=3
        assert_eq!(paths.len(), 4);
    }

    #[test]
    fn unreachable_goal_best_cost_none() {
        let mut g: PathGraph<(), ()> = PathGraph::new(vec![(), ()], 0);
        g.set_goal(1);
        assert_eq!(g.best_cost(), None);
        assert!(g.optimal_subgraph().is_none());
        assert!(g.shortest_path().is_none());
    }

    #[test]
    fn start_can_be_goal() {
        let mut g: PathGraph<(), ()> = PathGraph::new(vec![()], 0);
        g.set_goal(0);
        assert_eq!(g.best_cost(), Some(0));
        assert_eq!(g.shortest_path().unwrap().len(), 0);
        assert_eq!(g.walk(|_, o| o[0]).unwrap().len(), 0);
        let opt = g.optimal_subgraph().unwrap();
        assert_eq!(opt.count_paths(|_| 1), Some(1));
    }

    #[test]
    fn multiple_goals_pick_cheapest() {
        let mut g: PathGraph<(), ()> = PathGraph::new(vec![(), (), ()], 0);
        g.add_edge(0, 1, 5, ());
        g.add_edge(0, 2, 2, ());
        g.set_goal(1);
        g.set_goal(2);
        assert_eq!(g.best_cost(), Some(2));
        let opt = g.optimal_subgraph().unwrap();
        // vertex 1 remains a vertex but is not an optimal goal
        assert!(!opt.is_goal(1));
        assert!(opt.is_goal(2));
        assert_eq!(opt.n_edges(), 1);
    }
}
