//! Generic weighted path graphs.
//!
//! Both of the paper's graph constructions — inversion graphs `H_n`
//! (Section 3) and propagation graphs `G_n` (Section 4) — are directed,
//! edge-weighted graphs with one start vertex, a set of goal vertices, and
//! the same derived notions:
//!
//! * cheapest start→goal path cost (non-negative weights ⇒ Dijkstra),
//! * the **optimal subgraph** induced by all cheapest paths (the paper's
//!   `H*`/`G*`), obtained by keeping edge `(u,v,w)` iff
//!   `dist(start,u) + w + dist(v,goal) = best`,
//! * path counting and bounded enumeration over the optimal subgraph
//!   (which is acyclic — asserted, per the paper's observation),
//! * deterministic greedy path extraction under a pluggable edge
//!   preference.
//!
//! This module implements those once, generically over vertex and edge
//! payload types.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Sentinel distance for unreachable vertices.
pub const UNREACHABLE: u64 = u64::MAX;

/// A directed weighted edge with a payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Edge<E> {
    /// Source vertex index.
    pub from: u32,
    /// Target vertex index.
    pub to: u32,
    /// Non-negative weight.
    pub weight: u64,
    /// Domain payload (edge kind).
    pub payload: E,
}

/// A directed weighted graph with a start vertex and goal vertices.
#[derive(Clone, Debug)]
pub struct PathGraph<V, E> {
    vertices: Vec<V>,
    edges: Vec<Edge<E>>,
    /// `out[v]` lists edge indices leaving `v`, in insertion order
    /// (insertion order is the deterministic tie-break everywhere).
    out: Vec<Vec<u32>>,
    start: u32,
    goal: Vec<bool>,
}

impl<V, E> PathGraph<V, E> {
    /// Creates a graph over the given vertices with a start vertex.
    pub fn new(vertices: Vec<V>, start: u32) -> PathGraph<V, E> {
        let n = vertices.len();
        assert!((start as usize) < n, "start vertex out of range");
        PathGraph {
            vertices,
            edges: Vec::new(),
            out: vec![Vec::new(); n],
            start,
            goal: vec![false; n],
        }
    }

    /// Adds an edge, returning its index.
    pub fn add_edge(&mut self, from: u32, to: u32, weight: u64, payload: E) -> u32 {
        assert!(
            (to as usize) < self.vertices.len(),
            "edge target out of range"
        );
        let ix = self.edges.len() as u32;
        self.edges.push(Edge {
            from,
            to,
            weight,
            payload,
        });
        self.out[from as usize].push(ix);
        ix
    }

    /// Marks `v` as a goal vertex.
    pub fn set_goal(&mut self, v: u32) {
        self.goal[v as usize] = true;
    }

    /// The start vertex.
    pub fn start(&self) -> u32 {
        self.start
    }

    /// Whether `v` is a goal.
    pub fn is_goal(&self, v: u32) -> bool {
        self.goal[v as usize]
    }

    /// Number of vertices.
    pub fn n_vertices(&self) -> usize {
        self.vertices.len()
    }

    /// Number of edges.
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// Vertex payload.
    pub fn vertex(&self, v: u32) -> &V {
        &self.vertices[v as usize]
    }

    /// Edge by index.
    pub fn edge(&self, e: u32) -> &Edge<E> {
        &self.edges[e as usize]
    }

    /// Edge indices leaving `v`.
    pub fn out_edges(&self, v: u32) -> &[u32] {
        &self.out[v as usize]
    }

    /// Iterates over all edges with their indices.
    pub fn edges(&self) -> impl Iterator<Item = (u32, &Edge<E>)> {
        self.edges.iter().enumerate().map(|(i, e)| (i as u32, e))
    }

    /// Goal vertices.
    pub fn goals(&self) -> impl Iterator<Item = u32> + '_ {
        self.goal
            .iter()
            .enumerate()
            .filter(|(_, &g)| g)
            .map(|(v, _)| v as u32)
    }

    /// Dijkstra from the start vertex. Unreachable = [`UNREACHABLE`].
    pub fn dist_from_start(&self) -> Vec<u64> {
        self.dijkstra(std::iter::once(self.start), |v| {
            self.out[v as usize].iter().map(|&e| {
                let edge = &self.edges[e as usize];
                (edge.to, edge.weight)
            })
        })
    }

    /// Reverse Dijkstra from all goal vertices: `dist[v]` = cheapest cost
    /// from `v` to any goal.
    pub fn dist_to_goal(&self) -> Vec<u64> {
        // reverse adjacency
        let mut rin: Vec<Vec<u32>> = vec![Vec::new(); self.vertices.len()];
        for (i, e) in self.edges.iter().enumerate() {
            rin[e.to as usize].push(i as u32);
        }
        self.dijkstra(self.goals(), move |v| {
            rin[v as usize]
                .clone()
                .into_iter()
                .map(|e| {
                    let edge = &self.edges[e as usize];
                    (edge.from, edge.weight)
                })
                .collect::<Vec<_>>()
                .into_iter()
        })
    }

    fn dijkstra<I, N, It>(&self, sources: I, neighbours: N) -> Vec<u64>
    where
        I: Iterator<Item = u32>,
        N: Fn(u32) -> It,
        It: Iterator<Item = (u32, u64)>,
    {
        let mut dist = vec![UNREACHABLE; self.vertices.len()];
        let mut heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
        for s in sources {
            dist[s as usize] = 0;
            heap.push(Reverse((0, s)));
        }
        while let Some(Reverse((d, v))) = heap.pop() {
            if d > dist[v as usize] {
                continue;
            }
            for (to, w) in neighbours(v) {
                let nd = d.saturating_add(w);
                if nd < dist[to as usize] && nd != UNREACHABLE {
                    dist[to as usize] = nd;
                    heap.push(Reverse((nd, to)));
                }
            }
        }
        dist
    }

    /// Cost of the cheapest start→goal path, `None` if no goal is
    /// reachable.
    pub fn best_cost(&self) -> Option<u64> {
        let d = self.dist_from_start();
        self.goals()
            .map(|g| d[g as usize])
            .min()
            .filter(|&c| c != UNREACHABLE)
    }

    /// A cheapest start→goal path as a sequence of edge indices (`None` if
    /// unreachable). Works on cyclic graphs.
    pub fn shortest_path(&self) -> Option<Vec<u32>> {
        let mut dist = vec![UNREACHABLE; self.vertices.len()];
        let mut pred: Vec<Option<u32>> = vec![None; self.vertices.len()];
        let mut heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
        dist[self.start as usize] = 0;
        heap.push(Reverse((0, self.start)));
        while let Some(Reverse((d, v))) = heap.pop() {
            if d > dist[v as usize] {
                continue;
            }
            for &e in &self.out[v as usize] {
                let edge = &self.edges[e as usize];
                let nd = d.saturating_add(edge.weight);
                if nd < dist[edge.to as usize] && nd != UNREACHABLE {
                    dist[edge.to as usize] = nd;
                    pred[edge.to as usize] = Some(e);
                    heap.push(Reverse((nd, edge.to)));
                }
            }
        }
        let goal = self
            .goals()
            .filter(|&g| dist[g as usize] != UNREACHABLE)
            .min_by_key(|&g| dist[g as usize])?;
        let mut path = Vec::new();
        let mut cur = goal;
        while cur != self.start {
            let e = pred[cur as usize].expect("predecessor on reached vertex");
            path.push(e);
            cur = self.edges[e as usize].from;
        }
        path.reverse();
        Some(path)
    }

    /// The subgraph induced by all cheapest start→goal paths — the paper's
    /// `H*`/`G*`. Vertex indices are preserved (the subgraph keeps the full
    /// vertex table; pruned vertices simply have no incident edges and the
    /// start is unchanged). Returns `None` when no goal is reachable.
    pub fn optimal_subgraph(&self) -> Option<PathGraph<V, E>>
    where
        V: Clone,
        E: Clone,
    {
        let ds = self.dist_from_start();
        let dg = self.dist_to_goal();
        let best = self
            .goals()
            .map(|g| ds[g as usize])
            .min()
            .filter(|&c| c != UNREACHABLE)?;
        let mut out = PathGraph::new(self.vertices.clone(), self.start);
        for g in self.goals() {
            // A goal lies on an optimal path iff reaching it costs `best`
            // (continuing past a goal is never optimal: weights into any
            // further goal are ≥ 0 and the path is already complete).
            if ds[g as usize] == best {
                out.set_goal(g);
            }
        }
        for e in &self.edges {
            let (u, v) = (e.from as usize, e.to as usize);
            if ds[u] == UNREACHABLE || dg[v] == UNREACHABLE {
                continue;
            }
            if ds[u].saturating_add(e.weight).saturating_add(dg[v]) == best {
                out.add_edge(e.from, e.to, e.weight, e.payload.clone());
            }
        }
        Some(out)
    }

    /// Whether the graph (restricted to edges present) is acyclic.
    pub fn is_acyclic(&self) -> bool {
        self.topo_order().is_some()
    }

    /// A topological order of the vertices, `None` if cyclic.
    pub fn topo_order(&self) -> Option<Vec<u32>> {
        let n = self.vertices.len();
        let mut indeg = vec![0usize; n];
        for e in &self.edges {
            indeg[e.to as usize] += 1;
        }
        let mut queue: Vec<u32> = (0..n as u32).filter(|&v| indeg[v as usize] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(v) = queue.pop() {
            order.push(v);
            for &e in &self.out[v as usize] {
                let to = self.edges[e as usize].to as usize;
                indeg[to] -= 1;
                if indeg[to] == 0 {
                    queue.push(to as u32);
                }
            }
        }
        (order.len() == n).then_some(order)
    }

    /// Counts start→goal paths, weighting each path by the product of
    /// per-edge `factor`s (saturating `u128`). Requires acyclicity (true
    /// for optimal subgraphs); returns `None` on cyclic graphs, where the
    /// count is infinite.
    pub fn count_paths(&self, mut factor: impl FnMut(&E) -> u128) -> Option<u128> {
        let order = self.topo_order()?;
        let mut ways = vec![0u128; self.vertices.len()];
        ways[self.start as usize] = 1;
        for &v in &order {
            let wv = ways[v as usize];
            if wv == 0 {
                continue;
            }
            for &e in &self.out[v as usize] {
                let edge = &self.edges[e as usize];
                let contrib = wv.saturating_mul(factor(&edge.payload));
                let slot = &mut ways[edge.to as usize];
                *slot = slot.saturating_add(contrib);
            }
        }
        Some(
            self.goals()
                .fold(0u128, |acc, g| acc.saturating_add(ways[g as usize])),
        )
    }

    /// Extracts one start→goal path by repeatedly letting `choose` pick
    /// among the outgoing edges. Intended for **optimal subgraphs**, where
    /// every edge lies on a cheapest path, so any local choice is globally
    /// optimal; the walk stops at the first goal vertex reached.
    ///
    /// `choose` receives the graph and the candidate edge indices and must
    /// return one of them. Returns `None` if a non-goal vertex has no
    /// outgoing edges (impossible in an optimal subgraph).
    pub fn walk(
        &self,
        mut choose: impl FnMut(&PathGraph<V, E>, &[u32]) -> u32,
    ) -> Option<Vec<u32>> {
        let mut path = Vec::new();
        let mut cur = self.start;
        let mut steps = 0usize;
        // In an acyclic optimal subgraph paths are ≤ |E| long; the bound
        // guards against misuse on cyclic graphs.
        let max_steps = self.edges.len() + 1;
        while !self.goal[cur as usize] {
            let outs = &self.out[cur as usize];
            if outs.is_empty() || steps > max_steps {
                return None;
            }
            let e = choose(self, outs);
            debug_assert!(outs.contains(&e), "selector returned a foreign edge");
            path.push(e);
            cur = self.edges[e as usize].to;
            steps += 1;
        }
        Some(path)
    }

    /// Enumerates start→goal paths as edge-index sequences, up to `cap`
    /// paths and `max_len` edges per path (the length bound makes
    /// enumeration terminate even on cyclic full graphs, matching the
    /// paper's observation that non-optimal propagations can be arbitrarily
    /// long).
    pub fn enumerate_paths(&self, cap: usize, max_len: usize) -> Vec<Vec<u32>> {
        let mut result = Vec::new();
        let mut stack = Vec::new();
        self.enum_rec(self.start, &mut stack, &mut result, cap, max_len);
        result
    }

    fn enum_rec(
        &self,
        v: u32,
        stack: &mut Vec<u32>,
        result: &mut Vec<Vec<u32>>,
        cap: usize,
        max_len: usize,
    ) {
        if result.len() >= cap {
            return;
        }
        if self.goal[v as usize] {
            result.push(stack.clone());
            if result.len() >= cap {
                return;
            }
            // goals may have continuations in full graphs; keep exploring
        }
        if stack.len() >= max_len {
            return;
        }
        for &e in &self.out[v as usize] {
            stack.push(e);
            self.enum_rec(self.edges[e as usize].to, stack, result, cap, max_len);
            stack.pop();
            if result.len() >= cap {
                return;
            }
        }
    }

    /// Sum of edge weights along a path (saturating).
    pub fn path_cost(&self, path: &[u32]) -> u64 {
        path.iter().fold(0u64, |acc, &e| {
            acc.saturating_add(self.edges[e as usize].weight)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Diamond: 0 → {1, 2} → 3, with an expensive detour 0→3.
    fn diamond() -> PathGraph<&'static str, char> {
        let mut g = PathGraph::new(vec!["s", "a", "b", "t"], 0);
        g.add_edge(0, 1, 1, 'p');
        g.add_edge(0, 2, 1, 'q');
        g.add_edge(1, 3, 1, 'r');
        g.add_edge(2, 3, 1, 's');
        g.add_edge(0, 3, 5, 'x');
        g.set_goal(3);
        g
    }

    #[test]
    fn dijkstra_and_best_cost() {
        let g = diamond();
        assert_eq!(g.best_cost(), Some(2));
        let ds = g.dist_from_start();
        assert_eq!(ds, vec![0, 1, 1, 2]);
        let dg = g.dist_to_goal();
        assert_eq!(dg, vec![2, 1, 1, 0]);
    }

    #[test]
    fn optimal_subgraph_drops_expensive_edge() {
        let g = diamond();
        let opt = g.optimal_subgraph().unwrap();
        assert_eq!(opt.n_edges(), 4); // the weight-5 edge is pruned
        assert!(opt.is_acyclic());
        assert_eq!(opt.best_cost(), Some(2));
    }

    #[test]
    fn count_paths_in_optimal_subgraph() {
        let g = diamond().optimal_subgraph().unwrap();
        assert_eq!(g.count_paths(|_| 1), Some(2));
        // multiplicative factors
        assert_eq!(g.count_paths(|&c| if c == 'p' { 3 } else { 1 }), Some(4));
    }

    #[test]
    fn count_paths_on_cyclic_graph_is_none() {
        let mut g: PathGraph<(), ()> = PathGraph::new(vec![(), ()], 0);
        g.add_edge(0, 1, 1, ());
        g.add_edge(1, 0, 1, ());
        g.set_goal(1);
        assert!(g.count_paths(|_| 1).is_none());
        assert!(!g.is_acyclic());
        // but shortest path still works
        assert_eq!(g.shortest_path().unwrap().len(), 1);
    }

    #[test]
    fn shortest_path_reconstructs_edges() {
        let g = diamond();
        let p = g.shortest_path().unwrap();
        assert_eq!(g.path_cost(&p), 2);
        assert_eq!(p.len(), 2);
        assert_eq!(g.edge(p[0]).from, 0);
        assert_eq!(g.edge(p[1]).to, 3);
    }

    #[test]
    fn walk_with_preference() {
        let g = diamond().optimal_subgraph().unwrap();
        // prefer edges labelled 'q'
        let p = g
            .walk(|g, outs| {
                *outs
                    .iter()
                    .find(|&&e| g.edge(e).payload == 'q')
                    .unwrap_or(&outs[0])
            })
            .unwrap();
        assert_eq!(g.edge(p[0]).payload, 'q');
        assert_eq!(g.path_cost(&p), 2);
    }

    #[test]
    fn walk_fails_on_dead_end() {
        let mut g: PathGraph<(), ()> = PathGraph::new(vec![(), (), ()], 0);
        g.add_edge(0, 1, 1, ());
        g.set_goal(2); // unreachable
        assert!(g.walk(|_, outs| outs[0]).is_none());
    }

    #[test]
    fn enumerate_paths_respects_caps() {
        let g = diamond();
        let all = g.enumerate_paths(10, 10);
        assert_eq!(all.len(), 3); // two cheap, one direct
        let capped = g.enumerate_paths(2, 10);
        assert_eq!(capped.len(), 2);
        let short = g.enumerate_paths(10, 1);
        assert_eq!(short.len(), 1); // only the direct 0→3 edge fits
    }

    #[test]
    fn enumerate_on_cyclic_graph_terminates() {
        let mut g: PathGraph<(), char> = PathGraph::new(vec![(), ()], 0);
        g.add_edge(0, 0, 1, 'l');
        g.add_edge(0, 1, 1, 'f');
        g.set_goal(1);
        let paths = g.enumerate_paths(100, 4);
        // l^k f for k in 0..=3
        assert_eq!(paths.len(), 4);
    }

    #[test]
    fn unreachable_goal_best_cost_none() {
        let mut g: PathGraph<(), ()> = PathGraph::new(vec![(), ()], 0);
        g.set_goal(1);
        assert_eq!(g.best_cost(), None);
        assert!(g.optimal_subgraph().is_none());
        assert!(g.shortest_path().is_none());
    }

    #[test]
    fn start_can_be_goal() {
        let mut g: PathGraph<(), ()> = PathGraph::new(vec![()], 0);
        g.set_goal(0);
        assert_eq!(g.best_cost(), Some(0));
        assert_eq!(g.shortest_path().unwrap().len(), 0);
        assert_eq!(g.walk(|_, o| o[0]).unwrap().len(), 0);
        let opt = g.optimal_subgraph().unwrap();
        assert_eq!(opt.count_paths(|_| 1), Some(1));
    }

    #[test]
    fn multiple_goals_pick_cheapest() {
        let mut g: PathGraph<(), ()> = PathGraph::new(vec![(), (), ()], 0);
        g.add_edge(0, 1, 5, ());
        g.add_edge(0, 2, 2, ());
        g.set_goal(1);
        g.set_goal(2);
        assert_eq!(g.best_cost(), Some(2));
        let opt = g.optimal_subgraph().unwrap();
        // vertex 1 remains a vertex but is not an optimal goal
        assert!(!opt.is_goal(1));
        assert!(opt.is_goal(2));
        assert_eq!(opt.n_edges(), 1);
    }
}
