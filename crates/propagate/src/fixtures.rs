//! The paper's running example as a reusable fixture (test-only).
//!
//! * Figure 1 — the source tree `t0` (explicit node identifiers);
//! * Figure 2 — the DTD `D0`: `r → (a·(b+c)·d)*`, `d → ((a+b)·c)*`;
//! * Figure 3 — the annotation `A0`;
//! * Figure 4 — the view update `S0`.

use xvu_dtd::{parse_dtd, Dtd};
use xvu_edit::{parse_script, Script};
use xvu_tree::{parse_term_with_ids, Alphabet, DocTree, NodeIdGen};
use xvu_view::{parse_annotation, Annotation};

/// The assembled running example.
pub struct PaperFixture {
    /// Alphabet with `r, a, b, c, d` interned.
    pub alpha: Alphabet,
    /// Generator positioned beyond every fixture identifier.
    pub gen: NodeIdGen,
    /// `D0`.
    pub dtd: Dtd,
    /// `A0`.
    pub ann: Annotation,
    /// `t0` (Fig. 1).
    pub t0: DocTree,
    /// `S0` (Fig. 4).
    pub s0: Script,
}

/// Builds the running example exactly as in the paper's figures.
pub fn paper_running_example() -> PaperFixture {
    let mut alpha = Alphabet::new();
    let mut gen = NodeIdGen::new();
    let dtd = parse_dtd(&mut alpha, "r -> (a.(b+c).d)*\nd -> ((a+b).c)*").unwrap();
    let ann = parse_annotation(&mut alpha, "hide r b\nhide r c\nhide d a\nhide d b").unwrap();
    let t0 = parse_term_with_ids(
        &mut alpha,
        &mut gen,
        "r#0(a#1, b#2, d#3(a#7, c#8), a#4, c#5, d#6(b#9, c#10))",
    )
    .unwrap();
    let s0 = parse_script(
        &mut alpha,
        "nop:r#0(del:a#1, del:d#3(del:c#8), nop:a#4, \
         ins:d#11(ins:c#13, ins:c#14), ins:a#12, nop:d#6(nop:c#10, ins:c#15))",
    )
    .unwrap();
    for id in s0.node_ids() {
        gen.bump_past(id);
    }
    PaperFixture {
        alpha,
        gen,
        dtd,
        ann,
        t0,
        s0,
    }
}
