//! The cost model for graph weights.
//!
//! Edge weights must equal the number of non-phantom nodes the edge
//! contributes to the constructed script — that is what makes "cheapest
//! path" coincide with "cost-minimal propagation" (Theorems 2 and 4).
//! Inserting an invisible `y`-fragment therefore costs the size of the
//! fragment that will actually be materialised: the insertlet when one is
//! registered, the minimal witness otherwise.

use xvu_automata::INFINITE;
use xvu_dtd::{InsertletPackage, MinSizes};
use xvu_tree::Sym;

/// Charges for inserting invisible fragments.
#[derive(Clone, Copy, Debug)]
pub struct CostModel<'a> {
    /// Minimal tree sizes per label.
    pub sizes: &'a MinSizes,
    /// Registered default fragments.
    pub insertlets: &'a InsertletPackage,
}

impl CostModel<'_> {
    /// The cost of inserting a fresh `label`-rooted fragment;
    /// [`INFINITE`] when the label is unsatisfiable.
    #[inline]
    pub fn charge(&self, label: Sym) -> u64 {
        self.insertlets.charge(self.sizes, label)
    }

    /// Whether a fresh `label` fragment can be inserted at all.
    #[inline]
    pub fn insertable(&self, label: Sym) -> bool {
        self.charge(label) != INFINITE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xvu_dtd::{min_sizes, parse_dtd, InsertletPackage};
    use xvu_tree::{parse_term, Alphabet, NodeIdGen};

    #[test]
    fn charge_prefers_insertlet_size() {
        let mut alpha = Alphabet::new();
        let dtd = parse_dtd(&mut alpha, "r -> a*").unwrap();
        let sizes = min_sizes(&dtd, alpha.len());
        let r = alpha.get("r").unwrap();
        let mut pkg = InsertletPackage::new();
        let mut gen = NodeIdGen::new();
        let big = parse_term(&mut alpha, &mut gen, "r(a, a, a)").unwrap();
        pkg.insert_non_minimal(&dtd, r, big).unwrap();
        let cm = CostModel {
            sizes: &sizes,
            insertlets: &pkg,
        };
        assert_eq!(cm.charge(r), 4);
        assert!(cm.insertable(r));
    }

    #[test]
    fn unsatisfiable_is_not_insertable() {
        let mut alpha = Alphabet::new();
        let dtd = parse_dtd(&mut alpha, "x -> x").unwrap();
        let sizes = min_sizes(&dtd, alpha.len());
        let pkg = InsertletPackage::new();
        let cm = CostModel {
            sizes: &sizes,
            insertlets: &pkg,
        };
        let x = alpha.get("x").unwrap();
        assert!(!cm.insertable(x));
    }
}
