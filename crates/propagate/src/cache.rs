//! Session-persistent propagation caches with commit-time invalidation.
//!
//! [`crate::Session::propagate`] recomputes, per update, one dynamic
//! program per preserved node: a typing run over the node's source
//! children, a segment decomposition, the propagation graph `G_n`, its
//! optimal subgraph, and (on demand) its complement-preserving
//! restriction. For a node whose entire subtree the update leaves alone
//! (`Nop` throughout — the *clean region* of
//! [`xvu_edit::script_footprint`]), every one of those artefacts is a pure
//! function of the node's source subtree: the cheapest propagation is the
//! identity, the child-cost rows feeding `G_n` are all zero, and no
//! inserted fragment is in sight.
//!
//! [`PropCache`] memoises exactly those artefacts, keyed by the session
//! document's arena [`Slot`]s. The contract:
//!
//! * **Lookup domain** — an entry for node `n` may only be consulted when
//!   the current update's footprint marks `n` clean; inside the footprint
//!   everything is recomputed (and never cached, because it depends on the
//!   update). Typing runs are the one exception: they depend only on the
//!   source child word, so they are memoised for dirty nodes too.
//! * **Invalidation** — [`crate::Session::commit`] applies the committed
//!   propagation in place and drains the document's dirty journal
//!   ([`xvu_tree::Tree::drain_dirty_to_root`]); entries for the dirty
//!   region (every node whose subtree changed: the edited parents plus
//!   their ancestors up to the root) are dropped, entries for deleted
//!   nodes disappear with their identifiers, and everything else is
//!   re-keyed to the document's post-commit slots and carried over.
//!
//! Cached graphs are compared-by-construction with the uncached path: a
//! hit returns the very structure a fresh build would produce (the build
//! is deterministic in the source subtree), so propagations, counts, and
//! enumerations are byte-identical with the cache on or off — property
//! `session_cache_matches_one_shot` in `tests/incremental_cache.rs` pins
//! this.

use crate::graph::PropGraph;
use std::sync::Arc;
use xvu_automata::StateId;
use xvu_tree::{DocTree, NodeId, Slot, SlotMap, SlotSet};

/// A memoised typing run: the states of the deterministic content-model
/// run over a node's source child word, or `None` when the model is
/// nondeterministic (that outcome is memoised too).
pub(crate) type TypingRun = Option<Arc<[StateId]>>;

/// Per-node memoised dynamic-programming artefacts.
#[derive(Clone, Debug, Default)]
pub(crate) struct CacheEntry {
    /// The propagation graph `G_n` and its cheapest path cost (0 for every
    /// clean node: the identity propagation). Only stored for nodes whose
    /// subtree the caching update left clean.
    pub(crate) graph: Option<(Arc<PropGraph>, u64)>,
    /// The optimal subgraph `G*_n`, filled lazily by script assembly.
    pub(crate) opt: Option<Arc<PropGraph>>,
    /// The complement-preserving restriction of `G_n` (all
    /// invisible-mutation edges removed), filled lazily by
    /// [`crate::Session::complement_preserving`].
    pub(crate) complement: Option<Arc<PropGraph>>,
    /// The typing run over the node's source child word.
    pub(crate) run: Option<TypingRun>,
}

/// Observability counters for a session's [`PropCache`], returned by
/// [`crate::Session::cache_stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Graph lookups answered from the cache.
    pub hits: u64,
    /// Graph lookups that had to build (and then cached the result).
    pub misses: u64,
    /// Entries dropped by commit-time invalidation (dirty region plus
    /// deleted nodes).
    pub invalidated: u64,
    /// Entries currently held.
    pub entries: usize,
}

/// The session-persistent memo table. See the module docs for the keying
/// and invalidation contract.
#[derive(Clone, Debug)]
pub struct PropCache {
    enabled: bool,
    entries: SlotMap<CacheEntry>,
    hits: u64,
    misses: u64,
    invalidated: u64,
}

impl PropCache {
    /// An empty cache; `enabled = false` makes every lookup a pass-through
    /// miss that stores nothing (the measured baseline of the `churn`
    /// benchmark).
    pub(crate) fn new(enabled: bool) -> PropCache {
        PropCache {
            enabled,
            entries: SlotMap::new(),
            hits: 0,
            misses: 0,
            invalidated: 0,
        }
    }

    /// Whether lookups and stores are active.
    pub(crate) fn enabled(&self) -> bool {
        self.enabled
    }

    /// Enables or disables the cache, dropping all entries either way (a
    /// re-enabled cache must not serve entries from before the blackout).
    /// Dropped entries count as invalidated, like [`PropCache::clear`].
    pub(crate) fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
        self.invalidated += self.entries.len() as u64;
        self.entries = SlotMap::new();
    }

    /// Current counters.
    pub(crate) fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            invalidated: self.invalidated,
            entries: self.entries.len(),
        }
    }

    /// Drops every entry (counters survive).
    pub(crate) fn clear(&mut self) {
        self.invalidated += self.entries.len() as u64;
        self.entries = SlotMap::new();
    }

    fn entry_mut(&mut self, slot: Slot) -> &mut CacheEntry {
        if !self.entries.contains(slot) {
            self.entries.insert(slot, CacheEntry::default());
        }
        self.entries.get_mut(slot).expect("just inserted")
    }

    /// The cached graph (and its cost) for the node at `slot`, counting
    /// the lookup.
    pub(crate) fn graph(&mut self, slot: Slot) -> Option<(Arc<PropGraph>, u64)> {
        if !self.enabled {
            return None;
        }
        match self.entries.get(slot).and_then(|e| e.graph.clone()) {
            Some(hit) => {
                self.hits += 1;
                Some(hit)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Stores the freshly built graph for the node at `slot`.
    pub(crate) fn store_graph(&mut self, slot: Slot, graph: Arc<PropGraph>, cost: u64) {
        if self.enabled {
            self.entry_mut(slot).graph = Some((graph, cost));
        }
    }

    /// The memoised optimal subgraph for the node at `slot`.
    pub(crate) fn opt(&self, slot: Slot) -> Option<Arc<PropGraph>> {
        if !self.enabled {
            return None;
        }
        self.entries.get(slot).and_then(|e| e.opt.clone())
    }

    /// Memoises the optimal subgraph for the node at `slot`.
    pub(crate) fn store_opt(&mut self, slot: Slot, opt: Arc<PropGraph>) {
        if self.enabled {
            self.entry_mut(slot).opt = Some(opt);
        }
    }

    /// The memoised complement-preserving restriction for the node at
    /// `slot`.
    pub(crate) fn complement(&self, slot: Slot) -> Option<Arc<PropGraph>> {
        if !self.enabled {
            return None;
        }
        self.entries.get(slot).and_then(|e| e.complement.clone())
    }

    /// Memoises the complement-preserving restriction for the node at
    /// `slot`.
    pub(crate) fn store_complement(&mut self, slot: Slot, g: Arc<PropGraph>) {
        if self.enabled {
            self.entry_mut(slot).complement = Some(g);
        }
    }

    /// The memoised typing run for the node at `slot`, computing and
    /// storing it on first use. With the cache disabled, just computes.
    pub(crate) fn run_or_compute(
        &mut self,
        slot: Slot,
        compute: impl FnOnce() -> Option<Vec<StateId>>,
    ) -> TypingRun {
        if !self.enabled {
            return compute().map(Arc::from);
        }
        if let Some(run) = self.entries.get(slot).and_then(|e| e.run.clone()) {
            return run;
        }
        let run: TypingRun = compute().map(Arc::from);
        self.entry_mut(slot).run = Some(run.clone());
        run
    }

    /// Commit support, step 1: removes every entry and returns it keyed by
    /// node *identifier* (resolved against the pre-commit document), so
    /// entries survive the slot relocations of the in-place commit.
    pub(crate) fn drain_entries(&mut self, doc: &DocTree) -> Vec<(NodeId, CacheEntry)> {
        let entries = std::mem::replace(&mut self.entries, SlotMap::new());
        entries
            .iter()
            .map(|(slot, e)| (doc.id_at(slot), e.clone()))
            .collect()
    }

    /// Commit support, step 2: re-inserts the drained entries against the
    /// post-commit document, dropping entries whose node was deleted or
    /// whose post-commit slot lies in `dirty` (the committed script's
    /// dirty region: edited parents and all their ancestors).
    pub(crate) fn restore_entries(
        &mut self,
        doc: &DocTree,
        kept: Vec<(NodeId, CacheEntry)>,
        dirty: &SlotSet,
    ) {
        for (id, entry) in kept {
            match doc.slot(id) {
                Some(slot) if !dirty.contains(slot) => {
                    self.entries.insert(slot, entry);
                }
                _ => self.invalidated += 1,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::PropVertex;
    use crate::pathgraph::PathGraph;
    use xvu_tree::{parse_term_with_ids, Alphabet, NodeIdGen};

    fn stub_graph() -> Arc<PropGraph> {
        let mut g: PropGraph = PathGraph::new(
            vec![PropVertex {
                tpos: 0,
                state: StateId(0),
                spos: 0,
            }],
            0,
        );
        g.set_goal(0);
        Arc::new(g)
    }

    #[test]
    fn disabled_cache_stores_nothing() {
        let mut c = PropCache::new(false);
        c.store_graph(Slot::new(0), stub_graph(), 0);
        assert!(c.graph(Slot::new(0)).is_none());
        assert_eq!(c.stats().entries, 0);
        assert_eq!(c.stats().hits, 0);
        // the miss counter is also idle while disabled
        assert_eq!(c.stats().misses, 0);
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let mut c = PropCache::new(true);
        assert!(c.graph(Slot::new(3)).is_none());
        c.store_graph(Slot::new(3), stub_graph(), 0);
        assert!(c.graph(Slot::new(3)).is_some());
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn drain_restore_rekeys_by_identifier_and_drops_dirty() {
        let mut alpha = Alphabet::new();
        let mut gen = NodeIdGen::new();
        let before = parse_term_with_ids(&mut alpha, &mut gen, "r#0(a#1, b#2)").unwrap();
        let mut c = PropCache::new(true);
        for id in [0u64, 1, 2] {
            c.store_graph(before.slot(NodeId(id)).unwrap(), stub_graph(), 0);
        }
        let kept = c.drain_entries(&before);
        assert_eq!(c.stats().entries, 0);
        // after "commit": b#2 deleted, a#1's slot moved, r#0 dirty
        let mut after = parse_term_with_ids(&mut alpha, &mut gen, "r#0(a#1)").unwrap();
        let _ = &mut after;
        let mut dirty = SlotSet::new();
        dirty.insert(after.slot(NodeId(0)).unwrap());
        c.restore_entries(&after, kept, &dirty);
        let s = c.stats();
        assert_eq!(s.entries, 1, "only a#1 survives");
        assert_eq!(s.invalidated, 2, "r#0 dirty, b#2 deleted");
        assert!(c.graph(after.slot(NodeId(1)).unwrap()).is_some());
    }

    #[test]
    fn run_memo_computes_once() {
        let mut c = PropCache::new(true);
        let mut calls = 0;
        let r1 = c.run_or_compute(Slot::new(0), || {
            calls += 1;
            Some(vec![StateId(1), StateId(2)])
        });
        let r2 = c.run_or_compute(Slot::new(0), || {
            calls += 1;
            None
        });
        assert_eq!(calls, 1);
        assert_eq!(r1.as_deref(), Some(&[StateId(1), StateId(2)][..]));
        assert_eq!(r1, r2);
        // nondeterministic outcomes are memoised too
        let r3 = c.run_or_compute(Slot::new(1), || {
            calls += 1;
            None
        });
        let r4 = c.run_or_compute(Slot::new(1), || {
            calls += 1;
            Some(vec![])
        });
        assert_eq!(calls, 2);
        assert!(r3.is_none() && r4.is_none());
    }
}
