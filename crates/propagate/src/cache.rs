//! Session-persistent propagation caches with commit-time invalidation.
//!
//! [`crate::Session::propagate`] recomputes, per update, one dynamic
//! program per preserved node: a typing run over the node's source
//! children, a segment decomposition, the propagation graph `G_n`, its
//! optimal subgraph, and (on demand) its complement-preserving
//! restriction. For a node whose entire subtree the update leaves alone
//! (`Nop` throughout — the *clean region* of
//! [`xvu_edit::script_footprint`]), every one of those artefacts is a pure
//! function of the node's source subtree: the cheapest propagation is the
//! identity, the child-cost rows feeding `G_n` are all zero, and no
//! inserted fragment is in sight.
//!
//! [`PropCache`] memoises exactly those artefacts, keyed by the session
//! document's arena [`Slot`]s. The contract:
//!
//! * **Lookup domain** — an entry for node `n` may only be consulted when
//!   the current update's footprint marks `n` clean; inside the footprint
//!   everything is recomputed (and never cached, because it depends on the
//!   update). Typing runs are the one exception: they depend only on the
//!   source child word, so they are memoised for dirty nodes too.
//! * **Invalidation** — [`crate::Session::commit`] applies the committed
//!   propagation in place and drains the document's dirty journal
//!   ([`xvu_tree::Tree::drain_dirty_to_root`]); entries for the dirty
//!   region (every node whose subtree changed: the edited parents plus
//!   their ancestors up to the root) are dropped, entries for deleted
//!   nodes disappear with their identifiers, and everything else is
//!   re-keyed to the document's post-commit slots and carried over.
//!
//! Cached graphs are compared-by-construction with the uncached path: a
//! hit returns the very structure a fresh build would produce (the build
//! is deterministic in the source subtree), so propagations, counts, and
//! enumerations are byte-identical with the cache on or off — property
//! `session_cache_matches_one_shot` in `tests/incremental_cache.rs` pins
//! this.
//!
//! # The shared tier
//!
//! Since the positional-edge refactor, every artefact this cache holds
//! for a *clean* node (plus typing runs for any node) is a pure function
//! of the node's source-subtree structure and the engine — so on a local
//! miss the cache consults the engine-owned [`SharedMemoCache`]
//! (see [`crate::shared`]), keyed by the subtree's
//! [`InternId`]. Hits are *promoted* into the local slot-keyed table;
//! misses are built once, stored locally, and buffered for one batched
//! publication at operation end ([`PropCache::flush_shared`]). The local
//! `hits`/`misses` counters are unaffected by the shared tier (a shared
//! hit still counts as a local miss); `shared_hits`/`shared_misses`
//! observe the second tier. The intern-id map mirrors the document and is
//! maintained through commit exactly like the entries themselves: drained
//! by identifier, restored for the clean region, and recomputed
//! bottom-up for the dirty region and freshly inserted subtrees.

use crate::graph::PropGraph;
use crate::shared::{SharedEntry, SharedMemoCache};
use std::collections::HashMap;
use std::sync::Arc;
use xvu_automata::StateId;
use xvu_tree::{DocTree, InternId, Interner, NodeId, Slot, SlotMap, SlotSet};

/// A memoised typing run: the states of the deterministic content-model
/// run over a node's source child word, or `None` when the model is
/// nondeterministic (that outcome is memoised too).
pub(crate) type TypingRun = Option<Arc<[StateId]>>;

/// Per-node memoised dynamic-programming artefacts.
#[derive(Clone, Debug, Default)]
pub(crate) struct CacheEntry {
    /// The propagation graph `G_n` and its cheapest path cost (0 for every
    /// clean node: the identity propagation). Only stored for nodes whose
    /// subtree the caching update left clean.
    pub(crate) graph: Option<(Arc<PropGraph>, u64)>,
    /// The optimal subgraph `G*_n`, filled lazily by script assembly.
    pub(crate) opt: Option<Arc<PropGraph>>,
    /// The complement-preserving restriction of `G_n` (all
    /// invisible-mutation edges removed), filled lazily by
    /// [`crate::Session::complement_preserving`].
    pub(crate) complement: Option<Arc<PropGraph>>,
    /// The typing run over the node's source child word.
    pub(crate) run: Option<TypingRun>,
}

/// Observability counters for a session's [`PropCache`], returned by
/// [`crate::Session::cache_stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Graph lookups answered from the cache.
    pub hits: u64,
    /// Graph lookups that had to build (and then cached the result).
    pub misses: u64,
    /// Entries dropped by commit-time invalidation (dirty region plus
    /// deleted nodes).
    pub invalidated: u64,
    /// Entries currently held.
    pub entries: usize,
    /// Lookups this session answered from the engine's shared memo cache
    /// (these also count as local `misses`; see the module docs).
    pub shared_hits: u64,
    /// Shared-tier consultations that found nothing for the structure.
    pub shared_misses: u64,
    /// Entries this session published to the shared tier.
    pub published: u64,
}

/// The engine-owned pieces a session cache needs to take part in
/// fleet-wide sharing: the interner that names structures and the shared
/// memo table keyed by those names.
#[derive(Clone, Debug)]
pub(crate) struct SharedHandle {
    /// Assigns every subtree its structural [`InternId`].
    pub(crate) interner: Arc<Interner>,
    /// The engine-level shared memo table.
    pub(crate) cache: Arc<SharedMemoCache>,
}

/// The session-persistent memo table. See the module docs for the keying
/// and invalidation contract.
#[derive(Clone, Debug)]
pub struct PropCache {
    enabled: bool,
    entries: SlotMap<CacheEntry>,
    hits: u64,
    misses: u64,
    invalidated: u64,
    /// `Some` when the engine runs a shared tier; `None` → private mode.
    shared: Option<SharedHandle>,
    /// Structural id of every live node's subtree (mirrors the document).
    intern_ids: SlotMap<InternId>,
    /// Freshly built memos awaiting one batched publication.
    pending: HashMap<InternId, SharedEntry>,
    shared_hits: u64,
    shared_misses: u64,
    published: u64,
}

impl PropCache {
    /// An empty cache; `enabled = false` makes every lookup a pass-through
    /// miss that stores nothing (the measured baseline of the `churn`
    /// benchmark).
    pub(crate) fn new(enabled: bool) -> PropCache {
        PropCache {
            enabled,
            entries: SlotMap::new(),
            hits: 0,
            misses: 0,
            invalidated: 0,
            shared: None,
            intern_ids: SlotMap::new(),
            pending: HashMap::new(),
            shared_hits: 0,
            shared_misses: 0,
            published: 0,
        }
    }

    /// An empty cache wired to the engine's shared tier: interns the whole
    /// document up front so every node has its structural key.
    pub(crate) fn with_shared(enabled: bool, handle: SharedHandle, doc: &DocTree) -> PropCache {
        let intern_ids = handle.interner.intern_doc(doc);
        PropCache {
            shared: Some(handle),
            intern_ids,
            ..PropCache::new(enabled)
        }
    }

    /// Whether lookups and stores are active.
    pub(crate) fn enabled(&self) -> bool {
        self.enabled
    }

    /// Enables or disables the cache, dropping all entries either way (a
    /// re-enabled cache must not serve entries from before the blackout).
    /// Dropped entries count as invalidated, like [`PropCache::clear`].
    /// Unpublished pending memos are dropped too; the intern-id map stays
    /// (it mirrors the document, not the memo state).
    pub(crate) fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
        self.invalidated += self.entries.len() as u64;
        self.entries = SlotMap::new();
        self.pending.clear();
    }

    /// Current counters.
    pub(crate) fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            invalidated: self.invalidated,
            entries: self.entries.len(),
            shared_hits: self.shared_hits,
            shared_misses: self.shared_misses,
            published: self.published,
        }
    }

    /// Drops every entry (counters survive).
    pub(crate) fn clear(&mut self) {
        self.invalidated += self.entries.len() as u64;
        self.entries = SlotMap::new();
        self.pending.clear();
    }

    /// Consults the engine's shared tier for one artefact of the node at
    /// `slot`, counting the outcome here and in the engine's fleet-wide
    /// tallies. `None` without counting when the session runs private.
    fn shared_lookup<T>(
        &mut self,
        slot: Slot,
        pick: impl FnOnce(&SharedEntry) -> Option<T>,
    ) -> Option<T> {
        let handle = self.shared.as_ref()?;
        let id = *self.intern_ids.get(slot)?;
        let found = handle.cache.get(id).as_ref().and_then(pick);
        handle.cache.record_lookup(found.is_some());
        match found {
            Some(v) => {
                self.shared_hits += 1;
                Some(v)
            }
            None => {
                self.shared_misses += 1;
                None
            }
        }
    }

    /// Buffers one artefact of the node at `slot` for publication to the
    /// shared tier (no-op in private mode). Callers uphold the keying
    /// contract: graphs/opt/complement only for clean nodes, runs always.
    fn pend(&mut self, slot: Slot, fill: impl FnOnce(&mut SharedEntry)) {
        if self.shared.is_none() {
            return;
        }
        if let Some(&id) = self.intern_ids.get(slot) {
            fill(self.pending.entry(id).or_default());
        }
    }

    /// Publishes the pending batch to the engine's shared tier. Called at
    /// operation end and at commit; a warm session has nothing pending, so
    /// the steady state performs zero shared-tier writes.
    pub(crate) fn flush_shared(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let batch = std::mem::take(&mut self.pending);
        if let Some(handle) = &self.shared {
            self.published += batch.len() as u64;
            handle.cache.publish(batch);
        }
    }

    fn entry_mut(&mut self, slot: Slot) -> &mut CacheEntry {
        if !self.entries.contains(slot) {
            self.entries.insert(slot, CacheEntry::default());
        }
        self.entries.get_mut(slot).expect("just inserted")
    }

    /// The cached graph (and its cost) for the node at `slot`, counting
    /// the lookup. On a local miss, falls through to the shared tier and
    /// promotes a hit into the local table.
    pub(crate) fn graph(&mut self, slot: Slot) -> Option<(Arc<PropGraph>, u64)> {
        if !self.enabled {
            return None;
        }
        if let Some(hit) = self.entries.get(slot).and_then(|e| e.graph.clone()) {
            self.hits += 1;
            return Some(hit);
        }
        self.misses += 1;
        if let Some(hit) = self.shared_lookup(slot, |e| e.graph.clone()) {
            self.entry_mut(slot).graph = Some(hit.clone());
            return Some(hit);
        }
        None
    }

    /// Stores the freshly built graph for the node at `slot`.
    pub(crate) fn store_graph(&mut self, slot: Slot, graph: Arc<PropGraph>, cost: u64) {
        if self.enabled {
            self.entry_mut(slot).graph = Some((Arc::clone(&graph), cost));
            self.pend(slot, |p| p.graph = Some((graph, cost)));
        }
    }

    /// The memoised optimal subgraph for the node at `slot` (local first,
    /// then the shared tier, promoting hits).
    pub(crate) fn opt(&mut self, slot: Slot) -> Option<Arc<PropGraph>> {
        if !self.enabled {
            return None;
        }
        if let Some(hit) = self.entries.get(slot).and_then(|e| e.opt.clone()) {
            return Some(hit);
        }
        if let Some(hit) = self.shared_lookup(slot, |e| e.opt.clone()) {
            self.entry_mut(slot).opt = Some(Arc::clone(&hit));
            return Some(hit);
        }
        None
    }

    /// Memoises the optimal subgraph for the node at `slot`.
    pub(crate) fn store_opt(&mut self, slot: Slot, opt: Arc<PropGraph>) {
        if self.enabled {
            self.entry_mut(slot).opt = Some(Arc::clone(&opt));
            self.pend(slot, |p| p.opt = Some(opt));
        }
    }

    /// The memoised complement-preserving restriction for the node at
    /// `slot` (local first, then the shared tier, promoting hits).
    pub(crate) fn complement(&mut self, slot: Slot) -> Option<Arc<PropGraph>> {
        if !self.enabled {
            return None;
        }
        if let Some(hit) = self.entries.get(slot).and_then(|e| e.complement.clone()) {
            return Some(hit);
        }
        if let Some(hit) = self.shared_lookup(slot, |e| e.complement.clone()) {
            self.entry_mut(slot).complement = Some(Arc::clone(&hit));
            return Some(hit);
        }
        None
    }

    /// Memoises the complement-preserving restriction for the node at
    /// `slot`.
    pub(crate) fn store_complement(&mut self, slot: Slot, g: Arc<PropGraph>) {
        if self.enabled {
            self.entry_mut(slot).complement = Some(Arc::clone(&g));
            self.pend(slot, |p| p.complement = Some(g));
        }
    }

    /// The memoised typing run for the node at `slot`, computing and
    /// storing it on first use. With the cache disabled, just computes.
    /// Runs depend only on the source child word, so the shared tier is
    /// consulted (and fed) for dirty nodes too.
    pub(crate) fn run_or_compute(
        &mut self,
        slot: Slot,
        compute: impl FnOnce() -> Option<Vec<StateId>>,
    ) -> TypingRun {
        if !self.enabled {
            return compute().map(Arc::from);
        }
        if let Some(run) = self.entries.get(slot).and_then(|e| e.run.clone()) {
            return run;
        }
        if let Some(run) = self.shared_lookup(slot, |e| e.run.clone()) {
            self.entry_mut(slot).run = Some(run.clone());
            return run;
        }
        let run: TypingRun = compute().map(Arc::from);
        self.entry_mut(slot).run = Some(run.clone());
        self.pend(slot, |p| p.run = Some(run.clone()));
        run
    }

    /// Commit support, step 1: removes every entry and returns it keyed by
    /// node *identifier* (resolved against the pre-commit document), so
    /// entries survive the slot relocations of the in-place commit.
    pub(crate) fn drain_entries(&mut self, doc: &DocTree) -> Vec<(NodeId, CacheEntry)> {
        let entries = std::mem::replace(&mut self.entries, SlotMap::new());
        entries
            .iter()
            .map(|(slot, e)| (doc.id_at(slot), e.clone()))
            .collect()
    }

    /// Commit support, step 2: re-inserts the drained entries against the
    /// post-commit document, dropping entries whose node was deleted or
    /// whose post-commit slot lies in `dirty` (the committed script's
    /// dirty region: edited parents and all their ancestors).
    pub(crate) fn restore_entries(
        &mut self,
        doc: &DocTree,
        kept: Vec<(NodeId, CacheEntry)>,
        dirty: &SlotSet,
    ) {
        for (id, entry) in kept {
            match doc.slot(id) {
                Some(slot) if !dirty.contains(slot) => {
                    self.entries.insert(slot, entry);
                }
                _ => self.invalidated += 1,
            }
        }
    }

    /// Commit support for the intern-id map, step 1: removes every
    /// structural id and returns it keyed by node identifier (resolved
    /// against the pre-commit document). Empty in private mode.
    pub(crate) fn drain_intern_ids(&mut self, doc: &DocTree) -> Vec<(NodeId, InternId)> {
        let ids = std::mem::replace(&mut self.intern_ids, SlotMap::new());
        ids.iter()
            .map(|(slot, &id)| (doc.id_at(slot), id))
            .collect()
    }

    /// Commit support for the intern-id map, step 2: re-keys the surviving
    /// clean-region ids to post-commit slots, then re-interns the dirty
    /// region and every freshly inserted subtree bottom-up from the root
    /// (a node outside `dirty` with a surviving id has an unchanged
    /// subtree, so the walk stops there).
    pub(crate) fn restore_intern_ids(
        &mut self,
        doc: &DocTree,
        kept: Vec<(NodeId, InternId)>,
        dirty: &SlotSet,
    ) {
        let Some(handle) = &self.shared else {
            return;
        };
        for (id, intern) in kept {
            match doc.slot(id) {
                Some(slot) if !dirty.contains(slot) => {
                    self.intern_ids.insert(slot, intern);
                }
                _ => {}
            }
        }
        let interner = Arc::clone(&handle.interner);
        refresh_intern(&interner, doc, doc.root(), &mut self.intern_ids);
    }
}

/// Recomputes the structural id of `n`'s subtree, reusing surviving ids:
/// a node that still has an entry kept its whole subtree, so recursion
/// stops there.
fn refresh_intern(
    interner: &Interner,
    doc: &DocTree,
    n: NodeId,
    ids: &mut SlotMap<InternId>,
) -> InternId {
    let slot = doc.slot(n).expect("refresh walks live nodes");
    if let Some(&id) = ids.get(slot) {
        return id;
    }
    let mut kid_ids = Vec::with_capacity(doc.children(n).len());
    for i in 0..doc.children(n).len() {
        let child = doc.children(n)[i];
        kid_ids.push(refresh_intern(interner, doc, child, ids));
    }
    let id = interner.intern(doc.label(n), &kid_ids);
    ids.insert(slot, id);
    id
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::PropVertex;
    use crate::pathgraph::PathGraph;
    use xvu_tree::{parse_term_with_ids, Alphabet, NodeIdGen};

    fn stub_graph() -> Arc<PropGraph> {
        let mut g: PropGraph = PathGraph::new(
            vec![PropVertex {
                tpos: 0,
                state: StateId(0),
                spos: 0,
            }],
            0,
        );
        g.set_goal(0);
        Arc::new(g)
    }

    #[test]
    fn disabled_cache_stores_nothing() {
        let mut c = PropCache::new(false);
        c.store_graph(Slot::new(0), stub_graph(), 0);
        assert!(c.graph(Slot::new(0)).is_none());
        assert_eq!(c.stats().entries, 0);
        assert_eq!(c.stats().hits, 0);
        // the miss counter is also idle while disabled
        assert_eq!(c.stats().misses, 0);
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let mut c = PropCache::new(true);
        assert!(c.graph(Slot::new(3)).is_none());
        c.store_graph(Slot::new(3), stub_graph(), 0);
        assert!(c.graph(Slot::new(3)).is_some());
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn drain_restore_rekeys_by_identifier_and_drops_dirty() {
        let mut alpha = Alphabet::new();
        let mut gen = NodeIdGen::new();
        let before = parse_term_with_ids(&mut alpha, &mut gen, "r#0(a#1, b#2)").unwrap();
        let mut c = PropCache::new(true);
        for id in [0u64, 1, 2] {
            c.store_graph(before.slot(NodeId(id)).unwrap(), stub_graph(), 0);
        }
        let kept = c.drain_entries(&before);
        assert_eq!(c.stats().entries, 0);
        // after "commit": b#2 deleted, a#1's slot moved, r#0 dirty
        let mut after = parse_term_with_ids(&mut alpha, &mut gen, "r#0(a#1)").unwrap();
        let _ = &mut after;
        let mut dirty = SlotSet::new();
        dirty.insert(after.slot(NodeId(0)).unwrap());
        c.restore_entries(&after, kept, &dirty);
        let s = c.stats();
        assert_eq!(s.entries, 1, "only a#1 survives");
        assert_eq!(s.invalidated, 2, "r#0 dirty, b#2 deleted");
        assert!(c.graph(after.slot(NodeId(1)).unwrap()).is_some());
    }

    #[test]
    fn run_memo_computes_once() {
        let mut c = PropCache::new(true);
        let mut calls = 0;
        let r1 = c.run_or_compute(Slot::new(0), || {
            calls += 1;
            Some(vec![StateId(1), StateId(2)])
        });
        let r2 = c.run_or_compute(Slot::new(0), || {
            calls += 1;
            None
        });
        assert_eq!(calls, 1);
        assert_eq!(r1.as_deref(), Some(&[StateId(1), StateId(2)][..]));
        assert_eq!(r1, r2);
        // nondeterministic outcomes are memoised too
        let r3 = c.run_or_compute(Slot::new(1), || {
            calls += 1;
            None
        });
        let r4 = c.run_or_compute(Slot::new(1), || {
            calls += 1;
            Some(vec![])
        });
        assert_eq!(calls, 2);
        assert!(r3.is_none() && r4.is_none());
    }
}
