//! The compiled propagation engine and its update sessions.
//!
//! The paper fixes a DTD `D` and annotation `A` once and then answers
//! *many* view updates against them. [`Engine`] is that shape as an API:
//! built once from `(Alphabet, Dtd, Annotation)`, it precompiles and
//! caches every update-independent artefact —
//!
//! * the derived view DTD for `A(L(D))` ([`xvu_view::derive_view_dtd`]),
//! * the minimal-tree size tables ([`xvu_dtd::min_sizes`]),
//! * the insertlet package `W` and the [`CostModel`] over both,
//! * the default [`Config`] (selector `Φ`, witness budget),
//!
//! so nothing schema-dependent is ever recomputed per update. Opening a
//! document with [`Engine::open`] validates it once and yields a
//! [`Session`] that serves repeated [`Session::propagate`] /
//! [`Session::verify`] / [`Session::count_optimal`] /
//! [`Session::enumerate_optimal`] calls, each reusing the session's
//! cached view, visible-node set, and identifier high-water mark.
//! [`Session::commit`] advances the session to a propagation's output
//! using incremental revalidation ([`crate::revalidate_output`]) instead
//! of a full schema check.
//!
//! The free functions ([`crate::propagate`], [`Instance::new`], …) remain
//! as a one-shot compatibility layer over the same core code paths.
//!
//! ```
//! use xvu_dtd::parse_dtd;
//! use xvu_edit::parse_script;
//! use xvu_propagate::Engine;
//! use xvu_tree::{parse_term_with_ids, Alphabet, NodeIdGen};
//! use xvu_view::parse_annotation;
//!
//! let mut alpha = Alphabet::new();
//! let mut gen = NodeIdGen::new();
//! let dtd = parse_dtd(&mut alpha, "r -> (a.(b+c).d)*\nd -> ((a+b).c)*").unwrap();
//! let ann = parse_annotation(&mut alpha, "hide r b\nhide r c\nhide d a\nhide d b").unwrap();
//! let t0 = parse_term_with_ids(
//!     &mut alpha, &mut gen,
//!     "r#0(a#1, b#2, d#3(a#7, c#8), a#4, c#5, d#6(b#9, c#10))",
//! ).unwrap();
//! let s0 = parse_script(
//!     &mut alpha,
//!     "nop:r#0(del:a#1, del:d#3(del:c#8), nop:a#4, \
//!      ins:d#11(ins:c#13, ins:c#14), ins:a#12, nop:d#6(nop:c#10, ins:c#15))",
//! ).unwrap();
//!
//! let engine = Engine::builder()
//!     .alphabet(alpha)
//!     .dtd(dtd)
//!     .annotation(ann)
//!     .build()
//!     .unwrap();
//! let mut session = engine.open(&t0).unwrap();
//! let prop = session.propagate(&s0).unwrap();
//! assert_eq!(prop.cost, 14); // the paper's Figure 7 optimum
//! session.verify(&s0, &prop.script).unwrap();
//! session.commit(&prop).unwrap(); // incremental revalidation, then advance
//! assert_eq!(session.commits(), 1);
//! ```

use crate::algorithm::{propagate_with, Config, Propagation};
use crate::cost::CostModel;
use crate::count::count_optimal_propagations;
use crate::enumerate::enumerate_optimal_propagations;
use crate::error::PropagateError;
use crate::forest::PropagationForest;
use crate::incremental::revalidate_output;
use crate::instance::{Instance, Prepared};
use crate::verify::verify_propagation;
use std::borrow::Cow;
use std::collections::HashSet;
use xvu_dtd::{min_sizes, Dtd, InsertletPackage, MinSizes};
use xvu_edit::{input_tree, output_tree, Script};
use xvu_tree::{Alphabet, DocTree, NodeId, NodeIdGen};
use xvu_view::{derive_view_dtd, Annotation};

/// A compiled `(Σ, D, A)` triple with every update-independent artefact
/// precomputed. Build one with [`Engine::builder`]; open documents with
/// [`Engine::open`].
#[derive(Clone, Debug)]
pub struct Engine {
    alpha: Alphabet,
    dtd: Dtd,
    ann: Annotation,
    view_dtd: Dtd,
    sizes: MinSizes,
    insertlets: InsertletPackage,
    config: Config,
}

/// Builder for [`Engine`]; see [`Engine::builder`].
#[derive(Clone, Debug, Default)]
pub struct EngineBuilder {
    alpha: Option<Alphabet>,
    dtd: Option<Dtd>,
    ann: Option<Annotation>,
    insertlets: InsertletPackage,
    config: Config,
    minimal_insertlets: bool,
}

impl EngineBuilder {
    /// The alphabet `Σ` (required). Its length sizes every symbol-indexed
    /// table, so no separate `alphabet_len` argument exists anywhere in
    /// the engine API.
    pub fn alphabet(mut self, alpha: Alphabet) -> Self {
        self.alpha = Some(alpha);
        self
    }

    /// The document schema `D` (required).
    pub fn dtd(mut self, dtd: Dtd) -> Self {
        self.dtd = Some(dtd);
        self
    }

    /// The view definition `A` (required).
    pub fn annotation(mut self, ann: Annotation) -> Self {
        self.ann = Some(ann);
        self
    }

    /// Administrator-chosen insertlet package `W` (default: empty, which
    /// falls back to on-the-fly minimal witnesses).
    pub fn insertlets(mut self, insertlets: InsertletPackage) -> Self {
        self.insertlets = insertlets;
        self
    }

    /// Precompute a minimal insertlet for every satisfiable label within
    /// the witness budget, so propagation never materialises witnesses on
    /// the fly. Ignored when [`EngineBuilder::insertlets`] supplied a
    /// non-empty package.
    pub fn minimal_insertlets(mut self) -> Self {
        self.minimal_insertlets = true;
        self
    }

    /// Full tuning configuration (default: [`Config::default`]).
    pub fn config(mut self, config: Config) -> Self {
        self.config = config;
        self
    }

    /// Shorthand: the path-preference function `Φ`.
    pub fn selector(mut self, selector: crate::Selector) -> Self {
        self.config.selector = selector;
        self
    }

    /// Shorthand: the witness materialisation budget.
    pub fn witness_budget(mut self, budget: u64) -> Self {
        self.config.witness_budget = budget;
        self
    }

    /// Compiles the engine: derives the view DTD, computes the min-size
    /// tables, and (optionally) the minimal insertlet package.
    ///
    /// Errors only when a required component (alphabet, DTD, annotation)
    /// is missing.
    pub fn build(self) -> Result<Engine, PropagateError> {
        let missing =
            |what: &str| PropagateError::InvalidInstance(format!("engine builder: missing {what}"));
        let alpha = self.alpha.ok_or_else(|| missing("alphabet"))?;
        let dtd = self.dtd.ok_or_else(|| missing("dtd"))?;
        let ann = self.ann.ok_or_else(|| missing("annotation"))?;
        let sizes = min_sizes(&dtd, alpha.len());
        let view_dtd = derive_view_dtd(&dtd, &ann, alpha.len());
        let insertlets = if self.minimal_insertlets && self.insertlets.is_empty() {
            // Template identifiers never leak: instantiation always
            // re-identifies, so a local generator suffices.
            let mut gen = NodeIdGen::new();
            InsertletPackage::minimal_package(
                &dtd,
                &sizes,
                alpha.len(),
                &mut gen,
                self.config.witness_budget,
            )
        } else {
            self.insertlets
        };
        Ok(Engine {
            alpha,
            dtd,
            ann,
            view_dtd,
            sizes,
            insertlets,
            config: self.config,
        })
    }
}

impl Engine {
    /// Starts building an engine. [`EngineBuilder::alphabet`],
    /// [`EngineBuilder::dtd`], and [`EngineBuilder::annotation`] are
    /// required; everything else has defaults.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::default()
    }

    /// Convenience: an engine with default configuration and no
    /// insertlets.
    pub fn new(alpha: Alphabet, dtd: Dtd, ann: Annotation) -> Engine {
        Engine::builder()
            .alphabet(alpha)
            .dtd(dtd)
            .annotation(ann)
            .build()
            .expect("all required components supplied")
    }

    /// The alphabet `Σ`.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alpha
    }

    /// `|Σ|` — the size of every symbol-indexed table.
    pub fn alphabet_len(&self) -> usize {
        self.alpha.len()
    }

    /// The document schema `D`.
    pub fn dtd(&self) -> &Dtd {
        &self.dtd
    }

    /// The view definition `A`.
    pub fn annotation(&self) -> &Annotation {
        &self.ann
    }

    /// The precompiled DTD for the view language `A(L(D))`.
    pub fn view_dtd(&self) -> &Dtd {
        &self.view_dtd
    }

    /// The precompiled minimal-tree size tables.
    pub fn min_sizes(&self) -> &MinSizes {
        &self.sizes
    }

    /// The insertlet package `W`.
    pub fn insertlets(&self) -> &InsertletPackage {
        &self.insertlets
    }

    /// The engine's configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// The cost model over the cached size tables and insertlets.
    pub fn cost_model(&self) -> CostModel<'_> {
        CostModel {
            sizes: &self.sizes,
            insertlets: &self.insertlets,
        }
    }

    /// Validates `doc ∈ L(D)` once and opens a session serving repeated
    /// updates against it.
    pub fn open(&self, doc: &DocTree) -> Result<Session<'_>, PropagateError> {
        self.dtd
            .validate(doc)
            .map_err(PropagateError::SourceNotValid)?;
        Ok(Session {
            engine: self,
            prepared: Prepared::from_source(&self.ann, doc),
            doc: doc.clone(),
            commits: 0,
        })
    }

    /// One-shot [`Instance`] assembly against engine-cached artefacts:
    /// like [`Instance::new`] but without re-deriving the view DTD.
    ///
    /// Prefer [`Engine::open`] + [`Session::propagate`] when a document
    /// serves more than one update.
    pub fn instance<'e>(
        &'e self,
        source: &'e DocTree,
        update: &'e Script,
    ) -> Result<Instance<'e>, PropagateError> {
        self.dtd
            .validate(source)
            .map_err(PropagateError::SourceNotValid)?;
        let Prepared {
            view,
            visible,
            hidden,
            gen,
        } = Prepared::from_source(&self.ann, source);
        Instance::from_parts(
            &self.dtd,
            &self.ann,
            source,
            update,
            self.alpha.len(),
            Cow::Owned(view),
            Cow::Owned(visible),
            &hidden,
            gen,
            Cow::Borrowed(&self.view_dtd),
        )
    }

    /// Propagates a prebuilt instance under the engine's cached cost
    /// model and configuration.
    pub fn propagate(&self, inst: &Instance<'_>) -> Result<Propagation, PropagateError> {
        propagate_with(inst, &self.cost_model(), &self.config)
    }
}

/// One open document served by an [`Engine`].
///
/// The session validates the document once at [`Engine::open`] and caches
/// its view, visible/hidden identifier sets, and identifier high-water
/// mark; every subsequent call runs only update-dependent work.
/// [`Session::commit`] advances the session to a propagation's output
/// document with incremental revalidation.
#[derive(Clone, Debug)]
pub struct Session<'e> {
    engine: &'e Engine,
    prepared: Prepared,
    doc: DocTree,
    commits: u64,
}

impl<'e> Session<'e> {
    /// The engine that opened this session.
    pub fn engine(&self) -> &'e Engine {
        self.engine
    }

    /// The current source document `t`.
    pub fn document(&self) -> &DocTree {
        &self.doc
    }

    /// The current view `A(t)` — what a user of this session sees and
    /// edits.
    pub fn view(&self) -> &DocTree {
        &self.prepared.view
    }

    /// Identifiers of the currently visible nodes of the document.
    pub fn visible(&self) -> &HashSet<NodeId> {
        &self.prepared.visible
    }

    /// Number of propagations committed so far.
    pub fn commits(&self) -> u64 {
        self.commits
    }

    /// A fresh-identifier generator positioned past every identifier of
    /// the current document — hand it to update builders and parsers so
    /// new view nodes never collide with hidden source nodes.
    pub fn id_gen(&self) -> NodeIdGen {
        self.prepared.gen.clone()
    }

    /// Assembles the validated [`Instance`] for `update` against the
    /// current document, borrowing every session-cached artefact (no
    /// document-sized copies). All update-dependent well-formedness
    /// checks of [`Instance::new`] run; the source-side work does not.
    pub fn instance<'s>(&'s self, update: &'s Script) -> Result<Instance<'s>, PropagateError> {
        Instance::from_parts(
            &self.engine.dtd,
            &self.engine.ann,
            &self.doc,
            update,
            self.engine.alpha.len(),
            Cow::Borrowed(&self.prepared.view),
            Cow::Borrowed(&self.prepared.visible),
            &self.prepared.hidden,
            self.prepared.gen.clone(),
            Cow::Borrowed(&self.engine.view_dtd),
        )
    }

    /// Computes the optimal propagation of `update` to the current
    /// document (the session-cached equivalent of [`crate::propagate`]).
    pub fn propagate(&self, update: &Script) -> Result<Propagation, PropagateError> {
        let inst = self.instance(update)?;
        propagate_with(&inst, &self.engine.cost_model(), &self.engine.config)
    }

    /// Checks that `candidate` is a schema-compliant, side-effect-free
    /// propagation of `update` (see [`crate::verify_propagation`]).
    ///
    /// This re-assembles the instance from scratch — an independent
    /// first-principles re-check. Callers verifying the output of an
    /// immediately preceding [`Session::propagate`] who want to skip the
    /// duplicate update validation can build [`Session::instance`] once
    /// and feed it to [`Engine::propagate`] and
    /// [`crate::verify_propagation`] directly (as the `xvu` CLI does).
    pub fn verify(&self, update: &Script, candidate: &Script) -> Result<(), PropagateError> {
        let inst = self.instance(update)?;
        verify_propagation(&inst, candidate)
    }

    /// Counts the cost-minimal propagations of `update` (see
    /// [`crate::count_optimal_propagations`]).
    ///
    /// Builds the instance and forest from scratch. If you already hold
    /// the [`Propagation`] from [`Session::propagate`], count for free
    /// with [`crate::count_optimal_propagations`]`(&prop.forest)`
    /// instead.
    ///
    /// A successful count is always ≥ 1: when no propagation exists the
    /// instance or forest construction reports the reason as an `Err`
    /// (never a silent count of 0).
    pub fn count_optimal(&self, update: &Script) -> Result<u128, PropagateError> {
        let inst = self.instance(update)?;
        let forest = PropagationForest::build(&inst, &self.engine.cost_model())?;
        count_optimal_propagations(&forest).ok_or(PropagateError::NoPropagationPath(forest.root))
    }

    /// Enumerates up to `cap` cost-minimal propagations of `update` (see
    /// [`crate::enumerate_optimal_propagations`]).
    ///
    /// Builds the instance and forest from scratch. Callers who already
    /// hold the [`Propagation`] from [`Session::propagate`] can reuse its
    /// forest via [`Session::instance`] +
    /// [`crate::enumerate_optimal_propagations`] and skip the rebuild.
    pub fn enumerate_optimal(
        &self,
        update: &Script,
        cap: usize,
    ) -> Result<Vec<Script>, PropagateError> {
        let inst = self.instance(update)?;
        let cm = self.engine.cost_model();
        let forest = PropagationForest::build(&inst, &cm)?;
        enumerate_optimal_propagations(&inst, &cm, &forest, &self.engine.config, cap)
    }

    /// Advances the session to the propagation's output document.
    ///
    /// The output is schema-checked *incrementally* — only nodes whose
    /// child word can have changed are re-validated
    /// ([`crate::revalidate_output`]) — instead of the full validation a
    /// fresh [`Engine::open`] would run; the view, visible set, and
    /// identifier high-water mark are then rebuilt from the new document.
    pub fn commit(&mut self, prop: &Propagation) -> Result<(), PropagateError> {
        let input = input_tree(&prop.script)
            .ok_or_else(|| PropagateError::NotAPropagation("script input is empty".to_owned()))?;
        if input != self.doc {
            return Err(PropagateError::NotAPropagation(
                "committed propagation does not start from the session document".to_owned(),
            ));
        }
        revalidate_output(&self.engine.dtd, &prop.script)?;
        let out = output_tree(&prop.script).ok_or_else(|| {
            PropagateError::NotAPropagation("propagation deletes the document root".to_owned())
        })?;
        let mut prepared = Prepared::from_source(&self.engine.ann, &out);
        // `from_source` clears every identifier of the new document —
        // including hidden insertlet material the propagation introduced —
        // but the session's high-water mark must also stay monotone across
        // commits: identifiers handed out for *deleted* nodes (of this or
        // any earlier update) are never recycled, so scripts can't confuse
        // node identity across the session's history.
        prepared.gen.merge(&self.prepared.gen);
        self.prepared = prepared;
        self.doc = out;
        self.commits += 1;
        Ok(())
    }

    /// Convenience: [`Session::propagate`] then [`Session::commit`],
    /// returning the committed propagation.
    pub fn apply(&mut self, update: &Script) -> Result<Propagation, PropagateError> {
        let prop = self.propagate(update)?;
        self.commit(&prop)?;
        Ok(prop)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use crate::propagate;
    use xvu_edit::{nop_script, parse_script, script_to_term};
    use xvu_view::extract_view;

    fn paper_engine() -> (Engine, DocTree, Script) {
        let fx = fixtures::paper_running_example();
        let engine = Engine::builder()
            .alphabet(fx.alpha.clone())
            .dtd(fx.dtd.clone())
            .annotation(fx.ann.clone())
            .build()
            .unwrap();
        (engine, fx.t0.clone(), fx.s0.clone())
    }

    #[test]
    fn builder_requires_all_components() {
        let fx = fixtures::paper_running_example();
        assert!(matches!(
            Engine::builder().build(),
            Err(PropagateError::InvalidInstance(_))
        ));
        assert!(matches!(
            Engine::builder().alphabet(fx.alpha.clone()).build(),
            Err(PropagateError::InvalidInstance(_))
        ));
        assert!(Engine::builder()
            .alphabet(fx.alpha)
            .dtd(fx.dtd)
            .annotation(fx.ann)
            .build()
            .is_ok());
    }

    #[test]
    fn session_propagation_matches_one_shot() {
        let (engine, t0, s0) = paper_engine();
        let session = engine.open(&t0).unwrap();
        let prop = session.propagate(&s0).unwrap();
        assert_eq!(prop.cost, 14);
        session.verify(&s0, &prop.script).unwrap();

        let fx = fixtures::paper_running_example();
        let inst = Instance::new(&fx.dtd, &fx.ann, &fx.t0, &fx.s0, fx.alpha.len()).unwrap();
        let one_shot = propagate(&inst, &InsertletPackage::new(), &Config::default()).unwrap();
        assert_eq!(prop.cost, one_shot.cost);
        assert_eq!(
            script_to_term(&prop.script, engine.alphabet()),
            script_to_term(&one_shot.script, &fx.alpha)
        );
    }

    #[test]
    fn open_rejects_invalid_documents() {
        let (engine, _, _) = paper_engine();
        let fx = fixtures::paper_running_example();
        let mut alpha = fx.alpha.clone();
        let mut gen = xvu_tree::NodeIdGen::starting_at(100);
        let bad =
            xvu_tree::parse_term_with_ids(&mut alpha, &mut gen, "r#100(a#101, b#102)").unwrap();
        assert!(matches!(
            engine.open(&bad),
            Err(PropagateError::SourceNotValid(_))
        ));
    }

    #[test]
    fn commit_advances_the_session() {
        let (engine, t0, s0) = paper_engine();
        let mut session = engine.open(&t0).unwrap();
        let prop = session.propagate(&s0).unwrap();
        session.commit(&prop).unwrap();
        assert_eq!(session.commits(), 1);
        // the new document is the propagation output and the new view is
        // exactly what the user asked for
        let out = output_tree(&prop.script).unwrap();
        assert_eq!(session.document(), &out);
        assert_eq!(session.view(), &extract_view(engine.annotation(), &out));
        // an identity update against the new view propagates for free
        let prop2 = session.propagate(&nop_script(session.view())).unwrap();
        assert_eq!(prop2.cost, 0);
    }

    #[test]
    fn commit_rejects_propagations_of_other_documents() {
        let (engine, t0, s0) = paper_engine();
        let mut session = engine.open(&t0).unwrap();
        let prop = session.propagate(&s0).unwrap();
        session.commit(&prop).unwrap();
        // committing the same propagation again: its input is the *old*
        // document
        assert!(matches!(
            session.commit(&prop),
            Err(PropagateError::NotAPropagation(_))
        ));
    }

    #[test]
    fn session_count_and_enumerate() {
        let (engine, t0, s0) = paper_engine();
        let session = engine.open(&t0).unwrap();
        let count = session.count_optimal(&s0).unwrap();
        assert!(count >= 8);
        let scripts = session.enumerate_optimal(&s0, 5).unwrap();
        assert!(!scripts.is_empty());
        for s in &scripts {
            session.verify(&s0, s).unwrap();
        }
    }

    #[test]
    fn session_rejects_bad_updates() {
        let (engine, t0, _) = paper_engine();
        let session = engine.open(&t0).unwrap();
        let mut alpha = engine.alphabet().clone();
        // wrong In(S)
        let s = parse_script(&mut alpha, "nop:r#0(nop:a#1)").unwrap();
        assert!(matches!(
            session.propagate(&s),
            Err(PropagateError::Edit(_))
        ));
        // hidden identifier reuse (node 7 is hidden in t0)
        let s = parse_script(
            &mut alpha,
            "nop:r#0(nop:a#1, nop:d#3(nop:c#8), nop:a#4, ins:d#7, nop:d#6(nop:c#10))",
        )
        .unwrap();
        assert!(matches!(
            session.propagate(&s),
            Err(PropagateError::Edit(xvu_edit::EditError::HiddenIdUsed(
                NodeId(7)
            )))
        ));
    }

    #[test]
    fn minimal_insertlets_are_precompiled() {
        let fx = fixtures::paper_running_example();
        let engine = Engine::builder()
            .alphabet(fx.alpha.clone())
            .dtd(fx.dtd.clone())
            .annotation(fx.ann.clone())
            .minimal_insertlets()
            .build()
            .unwrap();
        assert_eq!(engine.insertlets().len(), fx.alpha.len());
        // and propagation still reproduces Fig. 7 (all minimal fragments
        // have the same sizes as the on-the-fly witnesses)
        let session = engine.open(&fx.t0).unwrap();
        assert_eq!(session.propagate(&fx.s0).unwrap().cost, 14);
    }

    #[test]
    fn engine_instance_matches_instance_new() {
        let (engine, t0, s0) = paper_engine();
        let inst = engine.instance(&t0, &s0).unwrap();
        let prop = engine.propagate(&inst).unwrap();
        assert_eq!(prop.cost, 14);
    }

    #[test]
    fn commit_id_high_water_is_monotone_and_collision_free() {
        // Update 1 inserts a visible (a, d(c)) group under very high
        // identifiers; update 2 deletes it again. After the second commit
        // the surviving document contains only small identifiers, but the
        // session generator must NOT rewind: identifiers from the
        // session's history (including hidden insertlet material that was
        // minted and then deleted) are never recycled.
        let (engine, t0, _) = paper_engine();
        let mut session = engine.open(&t0).unwrap();
        let mut alpha = engine.alphabet().clone();
        let u1 = parse_script(
            &mut alpha,
            "nop:r#0(nop:a#1, nop:d#3(nop:c#8), nop:a#4, nop:d#6(nop:c#10), \
             ins:a#1000, ins:d#1001(ins:c#1002))",
        )
        .unwrap();
        let p1 = session.apply(&u1).unwrap();
        // the inserted group forced fresh hidden material past 1002
        let after_first = session.id_gen().peek();
        assert!(after_first.0 > 1002, "peek = {after_first}");
        assert!(output_tree(&p1.script).unwrap().contains(NodeId(1001)));

        let u2 = parse_script(
            &mut alpha,
            "nop:r#0(nop:a#1, nop:d#3(nop:c#8), nop:a#4, nop:d#6(nop:c#10), \
             del:a#1000, del:d#1001(del:c#1002))",
        )
        .unwrap();
        session.apply(&u2).unwrap();
        // the document is back to small identifiers only…
        assert!(!session.document().contains(NodeId(1000)));
        // …but the generator never rewinds below the session's history
        let after_second = session.id_gen().peek();
        assert!(
            after_second >= after_first,
            "{after_second} < {after_first}"
        );
        let mut gen = session.id_gen();
        for _ in 0..64 {
            let fresh = gen.fresh();
            assert!(!session.document().contains(fresh));
            assert!(fresh.0 > 1002, "recycled historical id {fresh}");
        }
    }

    #[test]
    fn session_id_gen_clears_document_ids() {
        let (engine, t0, _) = paper_engine();
        let session = engine.open(&t0).unwrap();
        let mut gen = session.id_gen();
        let fresh = gen.fresh();
        assert!(!t0.contains(fresh));
    }
}
