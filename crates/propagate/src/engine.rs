//! The compiled propagation engine and its update sessions.
//!
//! The paper fixes a DTD `D` and annotation `A` once and then answers
//! *many* view updates against them. [`Engine`] is that shape as an API:
//! built once from `(Alphabet, Dtd, Annotation)`, it precompiles and
//! caches every update-independent artefact —
//!
//! * the derived view DTD for `A(L(D))` ([`xvu_view::derive_view_dtd`]),
//! * the minimal-tree size tables ([`xvu_dtd::min_sizes`]),
//! * the insertlet package `W` and the [`CostModel`] over both,
//! * the default [`Config`] (selector `Φ`, witness budget),
//!
//! so nothing schema-dependent is ever recomputed per update. Opening a
//! document with [`Engine::open`] validates it once and yields a
//! [`Session`] that serves repeated [`Session::propagate`] /
//! [`Session::verify`] / [`Session::count_optimal`] /
//! [`Session::enumerate_optimal`] calls, each reusing the session's
//! cached view, visible-node set, and identifier high-water mark.
//! [`Session::commit`] advances the session to a propagation's output
//! using incremental revalidation ([`crate::revalidate_output`]) instead
//! of a full schema check.
//!
//! The free functions ([`crate::propagate`], [`Instance::new`], …) remain
//! as a one-shot compatibility layer over the same core code paths.
//!
//! ```
//! use xvu_dtd::parse_dtd;
//! use xvu_edit::parse_script;
//! use xvu_propagate::Engine;
//! use xvu_tree::{parse_term_with_ids, Alphabet, NodeIdGen};
//! use xvu_view::parse_annotation;
//!
//! let mut alpha = Alphabet::new();
//! let mut gen = NodeIdGen::new();
//! let dtd = parse_dtd(&mut alpha, "r -> (a.(b+c).d)*\nd -> ((a+b).c)*").unwrap();
//! let ann = parse_annotation(&mut alpha, "hide r b\nhide r c\nhide d a\nhide d b").unwrap();
//! let t0 = parse_term_with_ids(
//!     &mut alpha, &mut gen,
//!     "r#0(a#1, b#2, d#3(a#7, c#8), a#4, c#5, d#6(b#9, c#10))",
//! ).unwrap();
//! let s0 = parse_script(
//!     &mut alpha,
//!     "nop:r#0(del:a#1, del:d#3(del:c#8), nop:a#4, \
//!      ins:d#11(ins:c#13, ins:c#14), ins:a#12, nop:d#6(nop:c#10, ins:c#15))",
//! ).unwrap();
//!
//! let engine = Engine::builder()
//!     .alphabet(alpha)
//!     .dtd(dtd)
//!     .annotation(ann)
//!     .build()
//!     .unwrap();
//! let mut session = engine.open(&t0).unwrap();
//! let prop = session.propagate(&s0).unwrap();
//! assert_eq!(prop.cost, 14); // the paper's Figure 7 optimum
//! session.verify(&s0, &prop.script).unwrap();
//! session.commit(&prop).unwrap(); // incremental revalidation, then advance
//! assert_eq!(session.commits(), 1);
//! ```

use crate::algorithm::{propagate_with, propagate_with_cache, Config, PhaseBreakdown, Propagation};
use crate::cache::{CacheStats, PropCache, SharedHandle};
use crate::complement::find_complement_preserving_with;
use crate::cost::CostModel;
use crate::count::count_optimal_propagations;
use crate::enumerate::enumerate_optimal_propagations;
use crate::error::PropagateError;
use crate::forest::PropagationForest;
use crate::incremental::revalidate_output;
use crate::instance::{Instance, Prepared};
use crate::scratch::PropScratch;
use crate::shared::{SharedCacheBackend, SharedCacheStats, SharedMemoCache};
use crate::verify::verify_propagation;
use std::borrow::Cow;
use std::collections::HashSet;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Instant;
use xvu_dtd::{min_sizes, Dtd, InsertletPackage, MinSizes};
use xvu_edit::{apply_in_place, script_footprint, EditError, Script};
use xvu_tree::{Alphabet, DocTree, Interner, NodeId, NodeIdGen, SlotSet};
use xvu_view::{derive_view_dtd, Annotation};

/// A compiled `(Σ, D, A)` triple with every update-independent artefact
/// precomputed. Build one with [`Engine::builder`]; open documents with
/// [`Engine::open`].
///
/// The engine also owns the fleet-wide state of the memo hierarchy: the
/// [`Interner`] naming subtree structures and the [`SharedMemoCache`]
/// serving structure-keyed memos to every session it opens (clones of an
/// engine share both). See [`crate::shared`].
#[derive(Clone, Debug)]
pub struct Engine {
    alpha: Alphabet,
    dtd: Dtd,
    ann: Annotation,
    view_dtd: Dtd,
    sizes: MinSizes,
    insertlets: InsertletPackage,
    config: Config,
    prop_cache: bool,
    shared_cache: bool,
    interner: Arc<Interner>,
    shared: Arc<SharedMemoCache>,
}

/// Builder for [`Engine`]; see [`Engine::builder`].
#[derive(Clone, Debug, Default)]
pub struct EngineBuilder {
    alpha: Option<Alphabet>,
    dtd: Option<Dtd>,
    ann: Option<Annotation>,
    insertlets: InsertletPackage,
    config: Config,
    minimal_insertlets: bool,
    prop_cache: Option<bool>,
    shared_cache: Option<bool>,
    shared_backend: SharedCacheBackend,
}

impl EngineBuilder {
    /// The alphabet `Σ` (required). Its length sizes every symbol-indexed
    /// table, so no separate `alphabet_len` argument exists anywhere in
    /// the engine API.
    pub fn alphabet(mut self, alpha: Alphabet) -> Self {
        self.alpha = Some(alpha);
        self
    }

    /// The document schema `D` (required).
    pub fn dtd(mut self, dtd: Dtd) -> Self {
        self.dtd = Some(dtd);
        self
    }

    /// The view definition `A` (required).
    pub fn annotation(mut self, ann: Annotation) -> Self {
        self.ann = Some(ann);
        self
    }

    /// Administrator-chosen insertlet package `W` (default: empty, which
    /// falls back to on-the-fly minimal witnesses).
    pub fn insertlets(mut self, insertlets: InsertletPackage) -> Self {
        self.insertlets = insertlets;
        self
    }

    /// Precompute a minimal insertlet for every satisfiable label within
    /// the witness budget, so propagation never materialises witnesses on
    /// the fly. Ignored when [`EngineBuilder::insertlets`] supplied a
    /// non-empty package.
    pub fn minimal_insertlets(mut self) -> Self {
        self.minimal_insertlets = true;
        self
    }

    /// Full tuning configuration (default: [`Config::default`]).
    pub fn config(mut self, config: Config) -> Self {
        self.config = config;
        self
    }

    /// Whether sessions opened by this engine keep a per-document
    /// [`PropCache`] of propagation-graph state across updates (default:
    /// `true`). Disable it to measure the uncached baseline or to trade
    /// the memory for recomputation; results are identical either way.
    pub fn prop_cache(mut self, on: bool) -> Self {
        self.prop_cache = Some(on);
        self
    }

    /// Whether sessions take part in the engine-level [`SharedMemoCache`]
    /// — structure-keyed memos shared across every session and document
    /// this engine opens (default: `true`; see [`crate::shared`]).
    /// Results are byte-identical with sharing on or off; only the work
    /// performed differs. Has no effect while the session cache itself is
    /// disabled.
    pub fn shared_cache(mut self, on: bool) -> Self {
        self.shared_cache = Some(on);
        self
    }

    /// The concurrency backend of the shared memo cache (default:
    /// [`SharedCacheBackend::Sharded`]; see [`crate::shared`] for the
    /// head-to-head).
    pub fn shared_cache_backend(mut self, backend: SharedCacheBackend) -> Self {
        self.shared_backend = backend;
        self
    }

    /// Shorthand: the path-preference function `Φ`.
    pub fn selector(mut self, selector: crate::Selector) -> Self {
        self.config.selector = selector;
        self
    }

    /// Shorthand: the witness materialisation budget.
    pub fn witness_budget(mut self, budget: u64) -> Self {
        self.config.witness_budget = budget;
        self
    }

    /// Compiles the engine: derives the view DTD, computes the min-size
    /// tables, and (optionally) the minimal insertlet package.
    ///
    /// Errors only when a required component (alphabet, DTD, annotation)
    /// is missing.
    pub fn build(self) -> Result<Engine, PropagateError> {
        let missing =
            |what: &str| PropagateError::InvalidInstance(format!("engine builder: missing {what}"));
        let alpha = self.alpha.ok_or_else(|| missing("alphabet"))?;
        let dtd = self.dtd.ok_or_else(|| missing("dtd"))?;
        let ann = self.ann.ok_or_else(|| missing("annotation"))?;
        let sizes = min_sizes(&dtd, alpha.len());
        let view_dtd = derive_view_dtd(&dtd, &ann, alpha.len());
        let insertlets = if self.minimal_insertlets && self.insertlets.is_empty() {
            // Template identifiers never leak: instantiation always
            // re-identifies, so a local generator suffices.
            let mut gen = NodeIdGen::new();
            InsertletPackage::minimal_package(
                &dtd,
                &sizes,
                alpha.len(),
                &mut gen,
                self.config.witness_budget,
            )
        } else {
            self.insertlets
        };
        Ok(Engine {
            alpha,
            dtd,
            ann,
            view_dtd,
            sizes,
            insertlets,
            config: self.config,
            prop_cache: self.prop_cache.unwrap_or(true),
            shared_cache: self.shared_cache.unwrap_or(true),
            interner: Arc::new(Interner::new()),
            shared: Arc::new(SharedMemoCache::new(self.shared_backend)),
        })
    }
}

impl Engine {
    /// Starts building an engine. [`EngineBuilder::alphabet`],
    /// [`EngineBuilder::dtd`], and [`EngineBuilder::annotation`] are
    /// required; everything else has defaults.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::default()
    }

    /// Convenience: an engine with default configuration and no
    /// insertlets.
    pub fn new(alpha: Alphabet, dtd: Dtd, ann: Annotation) -> Engine {
        Engine::builder()
            .alphabet(alpha)
            .dtd(dtd)
            .annotation(ann)
            .build()
            .expect("all required components supplied")
    }

    /// The alphabet `Σ`. Its length (`engine.alphabet().len()`) sizes
    /// every symbol-indexed table — there is no separate `alphabet_len`
    /// accessor anywhere in the engine API.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alpha
    }

    /// The document schema `D`.
    pub fn dtd(&self) -> &Dtd {
        &self.dtd
    }

    /// The view definition `A`.
    pub fn annotation(&self) -> &Annotation {
        &self.ann
    }

    /// The precompiled DTD for the view language `A(L(D))`.
    pub fn view_dtd(&self) -> &Dtd {
        &self.view_dtd
    }

    /// The precompiled minimal-tree size tables.
    pub fn min_sizes(&self) -> &MinSizes {
        &self.sizes
    }

    /// The insertlet package `W`.
    pub fn insertlets(&self) -> &InsertletPackage {
        &self.insertlets
    }

    /// The engine's configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// The cost model over the cached size tables and insertlets.
    pub fn cost_model(&self) -> CostModel<'_> {
        CostModel {
            sizes: &self.sizes,
            insertlets: &self.insertlets,
        }
    }

    /// Whether sessions of this engine take part in the shared memo
    /// cache ([`EngineBuilder::shared_cache`]).
    pub fn shared_cache_enabled(&self) -> bool {
        self.shared_cache
    }

    /// Fleet-wide counters of the engine's [`SharedMemoCache`],
    /// aggregated over every session this engine (and its clones) opened.
    /// All zeros when sharing is disabled or nothing has been served yet.
    pub fn shared_cache_stats(&self) -> SharedCacheStats {
        self.shared.stats()
    }

    /// The concurrency backend the shared memo cache runs on.
    pub fn shared_cache_backend(&self) -> SharedCacheBackend {
        self.shared.backend()
    }

    /// Validates `doc ∈ L(D)` once and opens a session serving repeated
    /// updates against it.
    ///
    /// The session's copy of the document runs with change tracking on:
    /// [`Session::commit`] applies propagations in place and drains the
    /// dirty journal to invalidate exactly the changed region of the
    /// session's [`PropCache`].
    pub fn open(&self, doc: &DocTree) -> Result<Session<'_>, PropagateError> {
        self.dtd
            .validate(doc)
            .map_err(PropagateError::SourceNotValid)?;
        let mut doc = doc.clone();
        doc.set_change_tracking(true);
        // Sessions of a sharing engine intern the document up front so
        // every node carries its structural key from the first update on.
        let cache = if self.shared_cache {
            PropCache::with_shared(
                self.prop_cache,
                SharedHandle {
                    interner: Arc::clone(&self.interner),
                    cache: Arc::clone(&self.shared),
                },
                &doc,
            )
        } else {
            PropCache::new(self.prop_cache)
        };
        Ok(Session {
            engine: self,
            prepared: Prepared::from_source(&self.ann, &doc),
            doc,
            commits: 0,
            cache: Mutex::new(cache),
            scratch: Mutex::new(PropScratch::new()),
        })
    }

    /// One-shot [`Instance`] assembly against engine-cached artefacts:
    /// like [`Instance::new`] but without re-deriving the view DTD.
    ///
    /// Prefer [`Engine::open`] + [`Session::propagate`] when a document
    /// serves more than one update.
    pub fn instance<'e>(
        &'e self,
        source: &'e DocTree,
        update: &'e Script,
    ) -> Result<Instance<'e>, PropagateError> {
        self.dtd
            .validate(source)
            .map_err(PropagateError::SourceNotValid)?;
        let Prepared {
            view,
            visible,
            hidden,
            gen,
        } = Prepared::from_source(&self.ann, source);
        Instance::from_parts(
            &self.dtd,
            &self.ann,
            source,
            update,
            self.alpha.len(),
            Cow::Owned(view),
            Cow::Owned(visible),
            &hidden,
            gen,
            Cow::Borrowed(&self.view_dtd),
        )
    }

    /// Propagates a prebuilt instance under the engine's cached cost
    /// model and configuration.
    pub fn propagate(&self, inst: &Instance<'_>) -> Result<Propagation, PropagateError> {
        propagate_with(inst, &self.cost_model(), &self.config)
    }
}

/// One open document served by an [`Engine`].
///
/// The session validates the document once at [`Engine::open`] and caches
/// its view, visible/hidden identifier sets, and identifier high-water
/// mark; every subsequent call runs only update-dependent work.
/// [`Session::commit`] advances the session to a propagation's output
/// document with incremental revalidation.
///
/// # Incremental propagation
///
/// The session additionally keeps a [`PropCache`]: per-node propagation
/// graphs, optimal subgraphs, complement restrictions, and typing runs,
/// keyed by the document's arena slots. [`Session::propagate`] (and
/// [`Session::count_optimal`] / [`Session::enumerate_optimal`] /
/// [`Session::complement_preserving`]) consult it for every node *outside*
/// the update's footprint and recompute only inside it, so the cost of the
/// Kth small update is proportional to the update's footprint rather than
/// the document. [`Session::commit`] invalidates exactly the dirty region
/// — the committed script's edited parents plus their ancestors — and
/// carries everything else across. Cached results are byte-identical to
/// uncached ones; see [`Session::cache_stats`] for observability and
/// [`EngineBuilder::prop_cache`] to turn the cache off.
#[derive(Debug)]
pub struct Session<'e> {
    engine: &'e Engine,
    prepared: Prepared,
    doc: DocTree,
    commits: u64,
    /// Interior mutability keeps `propagate(&self)` ergonomic; the mutex
    /// is uncontended (sessions are exclusively leased — see
    /// [`crate::SessionPool`]) and keeps `Session: Sync`.
    cache: Mutex<PropCache>,
    /// The session's reusable kernel scratch ([`PropScratch`]): pooled
    /// working memory for every propagation the session serves. Behind
    /// its own (equally uncontended) mutex so cache and scratch borrows
    /// never entangle.
    scratch: Mutex<PropScratch>,
}

impl Clone for Session<'_> {
    fn clone(&self) -> Self {
        Session {
            engine: self.engine,
            prepared: self.prepared.clone(),
            doc: self.doc.clone(),
            commits: self.commits,
            cache: Mutex::new(self.cache_guard().clone()),
            // Scratch is pure working memory — a clone starts cold.
            scratch: Mutex::new(PropScratch::new()),
        }
    }
}

impl<'e> Session<'e> {
    /// The engine that opened this session.
    pub fn engine(&self) -> &'e Engine {
        self.engine
    }

    fn cache_guard(&self) -> MutexGuard<'_, PropCache> {
        self.cache.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn scratch_guard(&self) -> MutexGuard<'_, PropScratch> {
        self.scratch.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Counters of the session's [`PropCache`]: graph hits/misses,
    /// commit-time invalidations, and the current entry count.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache_guard().stats()
    }

    /// Enables or disables the propagation cache for this session,
    /// dropping all entries either way. Results are identical with the
    /// cache on or off; only the work performed differs.
    pub fn set_cache_enabled(&mut self, on: bool) {
        self.cache
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner)
            .set_enabled(on);
    }

    /// Drops every cached entry (the cache stays enabled and refills on
    /// subsequent calls).
    pub fn clear_cache(&mut self) {
        self.cache
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
    }

    /// The current source document `t`.
    pub fn document(&self) -> &DocTree {
        &self.doc
    }

    /// The current view `A(t)` — what a user of this session sees and
    /// edits.
    pub fn view(&self) -> &DocTree {
        &self.prepared.view
    }

    /// Identifiers of the currently visible nodes of the document.
    pub fn visible(&self) -> &HashSet<NodeId> {
        &self.prepared.visible
    }

    /// Number of propagations committed so far.
    pub fn commits(&self) -> u64 {
        self.commits
    }

    /// A fresh-identifier generator positioned past every identifier of
    /// the current document — hand it to update builders and parsers so
    /// new view nodes never collide with hidden source nodes.
    pub fn id_gen(&self) -> NodeIdGen {
        self.prepared.gen.clone()
    }

    /// Raises the session's fresh-identifier high-water mark to at least
    /// `gen`'s ([`xvu_tree::NodeIdGen::merge`]; never lowers it).
    ///
    /// A session freshly opened from a committed document restarts its
    /// identifiers just past the document's own maximum — forgetting
    /// identifiers that were minted for since-deleted nodes over the
    /// previous session's history. Serving layers that park a session's
    /// document and later reopen it (e.g. an LRU pool evicting idle
    /// sessions) call this with the evicted session's [`Session::id_gen`]
    /// so the park/reopen round trip is invisible: the reopened session
    /// mints exactly the identifiers the evicted one would have.
    pub fn merge_id_gen(&mut self, gen: &NodeIdGen) {
        self.prepared.gen.merge(gen);
    }

    /// Assembles the validated [`Instance`] for `update` against the
    /// current document, borrowing every session-cached artefact (no
    /// document-sized copies). All update-dependent well-formedness
    /// checks of [`Instance::new`] run; the source-side work does not.
    pub fn instance<'s>(&'s self, update: &'s Script) -> Result<Instance<'s>, PropagateError> {
        Instance::from_parts(
            &self.engine.dtd,
            &self.engine.ann,
            &self.doc,
            update,
            self.engine.alpha.len(),
            Cow::Borrowed(&self.prepared.view),
            Cow::Borrowed(&self.prepared.visible),
            &self.prepared.hidden,
            self.prepared.gen.clone(),
            Cow::Borrowed(&self.engine.view_dtd),
        )
    }

    /// Computes the optimal propagation of `update` to the current
    /// document (the session-cached equivalent of [`crate::propagate`]).
    ///
    /// Per-node dynamic-programming state for every node outside the
    /// update's footprint is served from the session's [`PropCache`]
    /// (recomputing only inside the footprint); the result is
    /// byte-identical to an uncached computation.
    pub fn propagate(&self, update: &Script) -> Result<Propagation, PropagateError> {
        let inst = self.instance(update)?;
        let cm = self.engine.cost_model();
        let mut cache = self.cache_guard();
        let mut scratch = self.scratch_guard();
        let fp = cache.enabled().then(|| script_footprint(update));
        let result = propagate_with_cache(
            &inst,
            &cm,
            &self.engine.config,
            Some(&mut cache),
            fp.as_ref(),
            &mut scratch,
            None,
        );
        // One batched publication of freshly built memos per operation;
        // warm sessions have nothing pending and write nothing.
        cache.flush_shared();
        result
    }

    /// [`Session::propagate`] with a wall-clock [`PhaseBreakdown`]:
    /// instance assembly, graph construction, typing, and script assembly
    /// are timed individually (the bench harness's per-phase rows). The
    /// propagation itself is exactly what [`Session::propagate`] returns.
    pub fn propagate_phased(
        &self,
        update: &Script,
    ) -> Result<(Propagation, PhaseBreakdown), PropagateError> {
        let mut phases = PhaseBreakdown::default();
        let t0 = Instant::now();
        let inst = self.instance(update)?;
        phases.instance_ns = t0.elapsed().as_nanos() as u64;
        let cm = self.engine.cost_model();
        let mut cache = self.cache_guard();
        let mut scratch = self.scratch_guard();
        let fp = cache.enabled().then(|| script_footprint(update));
        let result = propagate_with_cache(
            &inst,
            &cm,
            &self.engine.config,
            Some(&mut cache),
            fp.as_ref(),
            &mut scratch,
            Some(&mut phases),
        );
        cache.flush_shared();
        result.map(|p| (p, phases))
    }

    /// Checks that `candidate` is a schema-compliant, side-effect-free
    /// propagation of `update` (see [`crate::verify_propagation`]).
    ///
    /// This re-assembles the instance from scratch — an independent
    /// first-principles re-check. Callers verifying the output of an
    /// immediately preceding [`Session::propagate`] who want to skip the
    /// duplicate update validation can build [`Session::instance`] once
    /// and feed it to [`Engine::propagate`] and
    /// [`crate::verify_propagation`] directly (as the `xvu` CLI does).
    pub fn verify(&self, update: &Script, candidate: &Script) -> Result<(), PropagateError> {
        let inst = self.instance(update)?;
        verify_propagation(&inst, candidate)
    }

    /// Counts the cost-minimal propagations of `update` (see
    /// [`crate::count_optimal_propagations`]).
    ///
    /// Builds the instance and forest from scratch. If you already hold
    /// the [`Propagation`] from [`Session::propagate`], count for free
    /// with [`crate::count_optimal_propagations`]`(&prop.forest)`
    /// instead.
    ///
    /// A successful count is always ≥ 1: when no propagation exists the
    /// instance or forest construction reports the reason as an `Err`
    /// (never a silent count of 0).
    pub fn count_optimal(&self, update: &Script) -> Result<u128, PropagateError> {
        let inst = self.instance(update)?;
        let forest = self.forest_for(&inst, update)?;
        count_optimal_propagations(&forest).ok_or(PropagateError::NoPropagationPath(forest.root))
    }

    /// Builds the propagation forest for an already-validated instance,
    /// routing clean-region graphs through the session cache. (A disabled
    /// cache is a pass-through, so the only conditional work is the
    /// footprint analysis itself.)
    fn forest_for(
        &self,
        inst: &Instance<'_>,
        update: &Script,
    ) -> Result<PropagationForest, PropagateError> {
        let cm = self.engine.cost_model();
        let mut cache = self.cache_guard();
        let mut scratch = self.scratch_guard();
        let fp = cache.enabled().then(|| script_footprint(update));
        let forest = PropagationForest::build_with(
            inst,
            &cm,
            Some(&mut cache),
            fp.as_ref(),
            &mut scratch,
            None,
        );
        cache.flush_shared();
        forest
    }

    /// Enumerates up to `cap` cost-minimal propagations of `update` (see
    /// [`crate::enumerate_optimal_propagations`]).
    ///
    /// Builds the instance and forest from scratch. Callers who already
    /// hold the [`Propagation`] from [`Session::propagate`] can reuse its
    /// forest via [`Session::instance`] +
    /// [`crate::enumerate_optimal_propagations`] and skip the rebuild.
    pub fn enumerate_optimal(
        &self,
        update: &Script,
        cap: usize,
    ) -> Result<Vec<Script>, PropagateError> {
        let inst = self.instance(update)?;
        let cm = self.engine.cost_model();
        let forest = self.forest_for(&inst, update)?;
        enumerate_optimal_propagations(&inst, &cm, &forest, &self.engine.config, cap)
    }

    /// Searches for a constant-complement propagation of `update` — one
    /// that neither deletes nor inserts any invisible node (see
    /// [`crate::find_complement_preserving`]; `Ok(None)` when none
    /// exists). Complement-restricted subgraphs for nodes outside the
    /// update footprint are memoised in the session's [`PropCache`].
    pub fn complement_preserving(&self, update: &Script) -> Result<Option<Script>, PropagateError> {
        let inst = self.instance(update)?;
        let cm = self.engine.cost_model();
        let mut cache = self.cache_guard();
        let mut scratch = self.scratch_guard();
        let fp = cache.enabled().then(|| script_footprint(update));
        let forest = PropagationForest::build_with(
            &inst,
            &cm,
            Some(&mut cache),
            fp.as_ref(),
            &mut scratch,
            None,
        )?;
        let result = find_complement_preserving_with(
            &inst,
            &forest,
            &cm,
            &self.engine.config,
            Some(&mut cache),
            fp.as_ref(),
            &mut scratch,
        );
        cache.flush_shared();
        result
    }

    /// Advances the session to the propagation's output document.
    ///
    /// The output is schema-checked *incrementally* — only nodes whose
    /// child word can have changed are re-validated
    /// ([`crate::revalidate_output`]) — instead of the full validation a
    /// fresh [`Engine::open`] would run. The propagation is then applied
    /// to the session document **in place**
    /// ([`xvu_edit::apply_in_place`]): untouched subtrees are not
    /// rebuilt, and the document's dirty journal records exactly the
    /// parents whose child word changed. Draining that journal
    /// ([`xvu_tree::Tree::drain_dirty_to_root`]) yields the dirty region —
    /// edited parents plus all their ancestors — and the session's
    /// [`PropCache`] invalidates exactly those entries, carrying every
    /// other memo across the commit. The view, visible set, and identifier
    /// high-water mark are then rebuilt from the new document.
    pub fn commit(&mut self, prop: &Propagation) -> Result<(), PropagateError> {
        revalidate_output(&self.engine.dtd, &prop.script)?;
        // Drain cache entries (and structural intern ids) keyed by
        // *identifier* before the in-place apply relocates arena slots.
        let (kept, kept_interns) = {
            let mut cache = self.cache_guard();
            (
                cache.drain_entries(&self.doc),
                cache.drain_intern_ids(&self.doc),
            )
        };
        if let Err(e) = apply_in_place(&mut self.doc, &prop.script) {
            // `apply_in_place` validates fully before mutating: the
            // document (and therefore every drained entry) is intact.
            let mut cache = self.cache_guard();
            cache.restore_entries(&self.doc, kept, &SlotSet::new());
            cache.restore_intern_ids(&self.doc, kept_interns, &SlotSet::new());
            return Err(match e {
                EditError::EmptyInput => {
                    PropagateError::NotAPropagation("script input is empty".to_owned())
                }
                EditError::EmptyOutput => PropagateError::NotAPropagation(
                    "propagation deletes the document root".to_owned(),
                ),
                EditError::InputMismatch => PropagateError::NotAPropagation(
                    "committed propagation does not start from the session document".to_owned(),
                ),
                other => PropagateError::Edit(other),
            });
        }
        // Commit-time invalidation: exactly the dirty region (the edited
        // parents the journal recorded, plus their ancestors — every node
        // whose subtree changed). Entries for deleted nodes lapse with
        // their identifiers inside `restore_entries`.
        let mut dirty = SlotSet::with_capacity(self.doc.size());
        for id in self.doc.drain_dirty_to_root() {
            if let Some(slot) = self.doc.slot(id) {
                dirty.insert(slot);
            }
        }
        {
            let mut cache = self.cache_guard();
            cache.restore_entries(&self.doc, kept, &dirty);
            // Re-key surviving intern ids and re-intern the dirty region
            // plus freshly inserted subtrees bottom-up; then publish any
            // memos still pending from the last operation.
            cache.restore_intern_ids(&self.doc, kept_interns, &dirty);
            cache.flush_shared();
        }
        let mut prepared = Prepared::from_source(&self.engine.ann, &self.doc);
        // `from_source` clears every identifier of the new document —
        // including hidden insertlet material the propagation introduced —
        // but the session's high-water mark must also stay monotone across
        // commits: identifiers handed out for *deleted* nodes (of this or
        // any earlier update) are never recycled, so scripts can't confuse
        // node identity across the session's history.
        prepared.gen.merge(&self.prepared.gen);
        self.prepared = prepared;
        self.commits += 1;
        Ok(())
    }

    /// Convenience: [`Session::propagate`] then [`Session::commit`],
    /// returning the committed propagation.
    pub fn apply(&mut self, update: &Script) -> Result<Propagation, PropagateError> {
        let prop = self.propagate(update)?;
        self.commit(&prop)?;
        Ok(prop)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use crate::propagate;
    use xvu_edit::{nop_script, output_tree, parse_script, script_to_term};
    use xvu_view::extract_view;

    fn paper_engine() -> (Engine, DocTree, Script) {
        let fx = fixtures::paper_running_example();
        let engine = Engine::builder()
            .alphabet(fx.alpha.clone())
            .dtd(fx.dtd.clone())
            .annotation(fx.ann.clone())
            .build()
            .unwrap();
        (engine, fx.t0.clone(), fx.s0.clone())
    }

    #[test]
    fn builder_requires_all_components() {
        let fx = fixtures::paper_running_example();
        assert!(matches!(
            Engine::builder().build(),
            Err(PropagateError::InvalidInstance(_))
        ));
        assert!(matches!(
            Engine::builder().alphabet(fx.alpha.clone()).build(),
            Err(PropagateError::InvalidInstance(_))
        ));
        assert!(Engine::builder()
            .alphabet(fx.alpha)
            .dtd(fx.dtd)
            .annotation(fx.ann)
            .build()
            .is_ok());
    }

    #[test]
    fn session_propagation_matches_one_shot() {
        let (engine, t0, s0) = paper_engine();
        let session = engine.open(&t0).unwrap();
        let prop = session.propagate(&s0).unwrap();
        assert_eq!(prop.cost, 14);
        session.verify(&s0, &prop.script).unwrap();

        let fx = fixtures::paper_running_example();
        let inst = Instance::new(&fx.dtd, &fx.ann, &fx.t0, &fx.s0, fx.alpha.len()).unwrap();
        let one_shot = propagate(&inst, &InsertletPackage::new(), &Config::default()).unwrap();
        assert_eq!(prop.cost, one_shot.cost);
        assert_eq!(
            script_to_term(&prop.script, engine.alphabet()),
            script_to_term(&one_shot.script, &fx.alpha)
        );
    }

    #[test]
    fn open_rejects_invalid_documents() {
        let (engine, _, _) = paper_engine();
        let fx = fixtures::paper_running_example();
        let mut alpha = fx.alpha.clone();
        let mut gen = xvu_tree::NodeIdGen::starting_at(100);
        let bad =
            xvu_tree::parse_term_with_ids(&mut alpha, &mut gen, "r#100(a#101, b#102)").unwrap();
        assert!(matches!(
            engine.open(&bad),
            Err(PropagateError::SourceNotValid(_))
        ));
    }

    #[test]
    fn commit_advances_the_session() {
        let (engine, t0, s0) = paper_engine();
        let mut session = engine.open(&t0).unwrap();
        let prop = session.propagate(&s0).unwrap();
        session.commit(&prop).unwrap();
        assert_eq!(session.commits(), 1);
        // the new document is the propagation output and the new view is
        // exactly what the user asked for
        let out = output_tree(&prop.script).unwrap();
        assert_eq!(session.document(), &out);
        assert_eq!(session.view(), &extract_view(engine.annotation(), &out));
        // an identity update against the new view propagates for free
        let prop2 = session.propagate(&nop_script(session.view())).unwrap();
        assert_eq!(prop2.cost, 0);
    }

    #[test]
    fn commit_rejects_propagations_of_other_documents() {
        let (engine, t0, s0) = paper_engine();
        let mut session = engine.open(&t0).unwrap();
        let prop = session.propagate(&s0).unwrap();
        session.commit(&prop).unwrap();
        // committing the same propagation again: its input is the *old*
        // document
        assert!(matches!(
            session.commit(&prop),
            Err(PropagateError::NotAPropagation(_))
        ));
    }

    #[test]
    fn session_count_and_enumerate() {
        let (engine, t0, s0) = paper_engine();
        let session = engine.open(&t0).unwrap();
        let count = session.count_optimal(&s0).unwrap();
        assert!(count >= 8);
        let scripts = session.enumerate_optimal(&s0, 5).unwrap();
        assert!(!scripts.is_empty());
        for s in &scripts {
            session.verify(&s0, s).unwrap();
        }
    }

    #[test]
    fn session_rejects_bad_updates() {
        let (engine, t0, _) = paper_engine();
        let session = engine.open(&t0).unwrap();
        let mut alpha = engine.alphabet().clone();
        // wrong In(S)
        let s = parse_script(&mut alpha, "nop:r#0(nop:a#1)").unwrap();
        assert!(matches!(
            session.propagate(&s),
            Err(PropagateError::Edit(_))
        ));
        // hidden identifier reuse (node 7 is hidden in t0)
        let s = parse_script(
            &mut alpha,
            "nop:r#0(nop:a#1, nop:d#3(nop:c#8), nop:a#4, ins:d#7, nop:d#6(nop:c#10))",
        )
        .unwrap();
        assert!(matches!(
            session.propagate(&s),
            Err(PropagateError::Edit(xvu_edit::EditError::HiddenIdUsed(
                NodeId(7)
            )))
        ));
    }

    #[test]
    fn minimal_insertlets_are_precompiled() {
        let fx = fixtures::paper_running_example();
        let engine = Engine::builder()
            .alphabet(fx.alpha.clone())
            .dtd(fx.dtd.clone())
            .annotation(fx.ann.clone())
            .minimal_insertlets()
            .build()
            .unwrap();
        assert_eq!(engine.insertlets().len(), fx.alpha.len());
        // and propagation still reproduces Fig. 7 (all minimal fragments
        // have the same sizes as the on-the-fly witnesses)
        let session = engine.open(&fx.t0).unwrap();
        assert_eq!(session.propagate(&fx.s0).unwrap().cost, 14);
    }

    #[test]
    fn engine_instance_matches_instance_new() {
        let (engine, t0, s0) = paper_engine();
        let inst = engine.instance(&t0, &s0).unwrap();
        let prop = engine.propagate(&inst).unwrap();
        assert_eq!(prop.cost, 14);
    }

    #[test]
    fn commit_id_high_water_is_monotone_and_collision_free() {
        // Update 1 inserts a visible (a, d(c)) group under very high
        // identifiers; update 2 deletes it again. After the second commit
        // the surviving document contains only small identifiers, but the
        // session generator must NOT rewind: identifiers from the
        // session's history (including hidden insertlet material that was
        // minted and then deleted) are never recycled.
        let (engine, t0, _) = paper_engine();
        let mut session = engine.open(&t0).unwrap();
        let mut alpha = engine.alphabet().clone();
        let u1 = parse_script(
            &mut alpha,
            "nop:r#0(nop:a#1, nop:d#3(nop:c#8), nop:a#4, nop:d#6(nop:c#10), \
             ins:a#1000, ins:d#1001(ins:c#1002))",
        )
        .unwrap();
        let p1 = session.apply(&u1).unwrap();
        // the inserted group forced fresh hidden material past 1002
        let after_first = session.id_gen().peek();
        assert!(after_first.0 > 1002, "peek = {after_first}");
        assert!(output_tree(&p1.script).unwrap().contains(NodeId(1001)));

        let u2 = parse_script(
            &mut alpha,
            "nop:r#0(nop:a#1, nop:d#3(nop:c#8), nop:a#4, nop:d#6(nop:c#10), \
             del:a#1000, del:d#1001(del:c#1002))",
        )
        .unwrap();
        session.apply(&u2).unwrap();
        // the document is back to small identifiers only…
        assert!(!session.document().contains(NodeId(1000)));
        // …but the generator never rewinds below the session's history
        let after_second = session.id_gen().peek();
        assert!(
            after_second >= after_first,
            "{after_second} < {after_first}"
        );
        let mut gen = session.id_gen();
        for _ in 0..64 {
            let fresh = gen.fresh();
            assert!(!session.document().contains(fresh));
            assert!(fresh.0 > 1002, "recycled historical id {fresh}");
        }
    }

    #[test]
    fn session_id_gen_clears_document_ids() {
        let (engine, t0, _) = paper_engine();
        let session = engine.open(&t0).unwrap();
        let mut gen = session.id_gen();
        let fresh = gen.fresh();
        assert!(!t0.contains(fresh));
    }

    #[test]
    fn prop_cache_hits_on_repeated_propagates() {
        let (engine, t0, s0) = paper_engine();
        let session = engine.open(&t0).unwrap();
        let p1 = session.propagate(&s0).unwrap();
        let after_first = session.cache_stats();
        // S0's clean region: a#4 and c#10 (whole subtrees Nop); their
        // graphs were built once and cached. The other two preserved
        // nodes (r#0, d#6) sit inside the footprint: no graph memo, but
        // their typing runs are memoised, so 4 entries in total.
        assert_eq!(after_first.hits, 0);
        assert_eq!(after_first.misses, 2);
        assert_eq!(after_first.entries, 4);
        let p2 = session.propagate(&s0).unwrap();
        let after_second = session.cache_stats();
        assert_eq!(after_second.hits, 2, "warm graphs served from the cache");
        assert_eq!(after_second.misses, 2, "no new misses");
        // and the warm result is byte-identical to the cold one
        assert_eq!(p1.cost, p2.cost);
        assert_eq!(
            script_to_term(&p1.script, engine.alphabet()),
            script_to_term(&p2.script, engine.alphabet())
        );
    }

    #[test]
    fn cache_disabled_engine_still_propagates_identically() {
        let fx = fixtures::paper_running_example();
        let cached = Engine::builder()
            .alphabet(fx.alpha.clone())
            .dtd(fx.dtd.clone())
            .annotation(fx.ann.clone())
            .build()
            .unwrap();
        let uncached = Engine::builder()
            .alphabet(fx.alpha.clone())
            .dtd(fx.dtd.clone())
            .annotation(fx.ann.clone())
            .prop_cache(false)
            .build()
            .unwrap();
        let sc = cached.open(&fx.t0).unwrap();
        let su = uncached.open(&fx.t0).unwrap();
        let pc = sc.propagate(&fx.s0).unwrap();
        let pu = su.propagate(&fx.s0).unwrap();
        assert_eq!(pc.cost, pu.cost);
        assert_eq!(
            script_to_term(&pc.script, cached.alphabet()),
            script_to_term(&pu.script, uncached.alphabet())
        );
        let stats = su.cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (0, 0, 0));
    }

    #[test]
    fn set_cache_enabled_toggles_and_clears() {
        let (engine, t0, s0) = paper_engine();
        let mut session = engine.open(&t0).unwrap();
        session.propagate(&s0).unwrap();
        assert!(session.cache_stats().entries > 0);
        session.set_cache_enabled(false);
        assert_eq!(session.cache_stats().entries, 0);
        session.propagate(&s0).unwrap();
        assert_eq!(session.cache_stats().entries, 0, "disabled: stores nothing");
        session.set_cache_enabled(true);
        session.propagate(&s0).unwrap();
        assert!(session.cache_stats().entries > 0, "re-enabled: refills");
        session.clear_cache();
        assert_eq!(session.cache_stats().entries, 0);
    }

    #[test]
    fn commit_invalidates_only_the_dirty_region() {
        // Hospital-shaped schema: many independent sibling groups, so a
        // commit touching one group must keep every other group's memo.
        use xvu_dtd::parse_dtd;
        use xvu_tree::parse_term_with_ids;
        use xvu_view::parse_annotation;

        let mut alpha = Alphabet::new();
        let dtd = parse_dtd(&mut alpha, "r -> d*\nd -> (a.h?)*").unwrap();
        let ann = parse_annotation(&mut alpha, "hide d h").unwrap();
        let mut gen = NodeIdGen::new();
        let doc = parse_term_with_ids(
            &mut alpha,
            &mut gen,
            "r#0(d#1(a#2, h#3), d#4(a#5, h#6), d#7(a#8, h#9))",
        )
        .unwrap();
        let engine = Engine::builder()
            .alphabet(alpha.clone())
            .dtd(dtd)
            .annotation(ann)
            .build()
            .unwrap();
        let mut session = engine.open(&doc).unwrap();

        // warm the cache with an identity update (everything clean)
        let prop0 = session.propagate(&nop_script(session.view())).unwrap();
        assert_eq!(prop0.cost, 0);
        let warm = session.cache_stats();
        // every preserved node (r, 3 d's, 3 a's) was cached
        assert_eq!(warm.entries, 7);

        // admit a new a under d#1 and commit
        let u = parse_script(
            &mut alpha,
            "nop:r#0(nop:d#1(nop:a#2, ins:a#20), nop:d#4(nop:a#5), nop:d#7(nop:a#8))",
        )
        .unwrap();
        let prop = session.propagate(&u).unwrap();
        session.commit(&prop).unwrap();
        let after = session.cache_stats();
        // the dirty region is d#1 and its ancestor r#0; everything else
        // (d#4, d#7, and all the a's — including the fresh state built for
        // the new document) must carry across
        assert!(
            after.invalidated >= 2,
            "dirty region invalidated: {after:?}"
        );
        assert!(after.entries >= 4, "clean region carried over: {after:?}");

        // a second identity propagate hits the carried entries and rebuilds
        // only the invalidated region
        let before_hits = session.cache_stats().hits;
        session.propagate(&nop_script(session.view())).unwrap();
        let s = session.cache_stats();
        assert!(
            s.hits >= before_hits + 4,
            "carried entries must serve hits: {s:?}"
        );
    }

    #[test]
    fn shared_cache_serves_structurally_equal_sessions() {
        use xvu_dtd::parse_dtd;
        use xvu_tree::parse_term_with_ids;
        use xvu_view::parse_annotation;

        let mut alpha = Alphabet::new();
        let dtd = parse_dtd(&mut alpha, "r -> d*\nd -> (a.h?)*").unwrap();
        let ann = parse_annotation(&mut alpha, "hide d h").unwrap();
        let mut gen = NodeIdGen::new();
        let d1 =
            parse_term_with_ids(&mut alpha, &mut gen, "r#0(d#1(a#2, h#3), d#4(a#5, h#6))").unwrap();
        // The same *structure* under entirely different identifiers.
        let d2 = parse_term_with_ids(
            &mut alpha,
            &mut gen,
            "r#10(d#11(a#12, h#13), d#14(a#15, h#16))",
        )
        .unwrap();
        let engine = Engine::builder()
            .alphabet(alpha)
            .dtd(dtd)
            .annotation(ann)
            .build()
            .unwrap();

        let s1 = engine.open(&d1).unwrap();
        let p1 = s1.propagate(&nop_script(s1.view())).unwrap();
        assert_eq!(p1.cost, 0);
        let st1 = s1.cache_stats();
        assert!(st1.published > 0, "cold session publishes: {st1:?}");
        assert!(engine.shared_cache_stats().published >= st1.published);

        // A different document of the same family: every memo the first
        // session built is served by structure, none is recomputed or
        // republished.
        let s2 = engine.open(&d2).unwrap();
        let p2 = s2.propagate(&nop_script(s2.view())).unwrap();
        assert_eq!(p2.cost, 0);
        let st2 = s2.cache_stats();
        assert!(st2.shared_hits > 0, "served by structure: {st2:?}");
        assert_eq!(st2.shared_misses, 0, "fully warm family: {st2:?}");
        assert_eq!(st2.published, 0, "nothing new to publish: {st2:?}");
        assert_eq!(st2.hits, 0, "the local tier was stone cold: {st2:?}");
        let fleet = engine.shared_cache_stats();
        assert!(fleet.hits >= st2.shared_hits);
        assert!(fleet.entries > 0);

        // With sharing disabled the second session recomputes everything
        // — and the propagation is byte-identical either way.
        let private = Engine::builder()
            .alphabet(engine.alphabet().clone())
            .dtd(engine.dtd().clone())
            .annotation(engine.annotation().clone())
            .shared_cache(false)
            .build()
            .unwrap();
        let sp = private.open(&d2).unwrap();
        let pp = sp.propagate(&nop_script(sp.view())).unwrap();
        assert_eq!(pp.cost, p2.cost);
        assert_eq!(
            script_to_term(&pp.script, private.alphabet()),
            script_to_term(&p2.script, engine.alphabet())
        );
        let stp = sp.cache_stats();
        assert_eq!(
            (stp.shared_hits, stp.shared_misses, stp.published),
            (0, 0, 0)
        );
        assert_eq!(private.shared_cache_stats(), SharedCacheStats::default());
    }

    #[test]
    fn shared_cache_survives_commit_and_reinterns_dirty_region() {
        use xvu_dtd::parse_dtd;
        use xvu_tree::parse_term_with_ids;
        use xvu_view::parse_annotation;

        let mut alpha = Alphabet::new();
        let dtd = parse_dtd(&mut alpha, "r -> d*\nd -> (a.h?)*").unwrap();
        let ann = parse_annotation(&mut alpha, "hide d h").unwrap();
        let mut gen = NodeIdGen::new();
        let doc = parse_term_with_ids(
            &mut alpha,
            &mut gen,
            "r#0(d#1(a#2, h#3), d#4(a#5, h#6), d#7(a#8, h#9))",
        )
        .unwrap();
        let engine = Engine::builder()
            .alphabet(alpha.clone())
            .dtd(dtd)
            .annotation(ann)
            .build()
            .unwrap();
        let mut session = engine.open(&doc).unwrap();
        session.propagate(&nop_script(session.view())).unwrap();

        // Commit an update: d#1 gains an a. The dirty region (d#1, r#0)
        // is re-interned; d#4/d#7 keep their structural ids.
        let u = parse_script(
            &mut alpha,
            "nop:r#0(nop:d#1(nop:a#2, ins:a#20), nop:d#4(nop:a#5), nop:d#7(nop:a#8))",
        )
        .unwrap();
        let prop = session.propagate(&u).unwrap();
        session.commit(&prop).unwrap();

        // A fresh session over a family sibling reuses the shared tier
        // for the untouched d(a, h) groups; the commit re-interned the
        // grown d#1 subtree without corrupting the survivors' keys.
        let mut gen2 = NodeIdGen::starting_at(100);
        let doc2 = parse_term_with_ids(
            &mut alpha,
            &mut gen2,
            "r#100(d#101(a#102, h#103, a#110), d#104(a#105, h#106), d#107(a#108, h#109))",
        )
        .unwrap();
        let s2 = engine.open(&doc2).unwrap();
        let p2 = s2.propagate(&nop_script(s2.view())).unwrap();
        assert_eq!(p2.cost, 0);
        let st2 = s2.cache_stats();
        assert!(
            st2.shared_hits > 0,
            "post-commit structures are shared: {st2:?}"
        );
    }

    #[test]
    fn session_complement_preserving_matches_free_function() {
        use xvu_dtd::parse_dtd;
        use xvu_tree::parse_term_with_ids;
        use xvu_view::parse_annotation;

        let mut alpha = Alphabet::new();
        let dtd = parse_dtd(&mut alpha, "r -> (a.h?)*").unwrap();
        let ann = parse_annotation(&mut alpha, "hide r h").unwrap();
        let mut gen = NodeIdGen::new();
        let doc = parse_term_with_ids(&mut alpha, &mut gen, "r#0(a#1, h#2)").unwrap();
        let update = parse_script(&mut alpha, "nop:r#0(nop:a#1, ins:a#5)").unwrap();
        let engine = Engine::builder()
            .alphabet(alpha.clone())
            .dtd(dtd.clone())
            .annotation(ann.clone())
            .build()
            .unwrap();
        let session = engine.open(&doc).unwrap();
        let by_session = session
            .complement_preserving(&update)
            .unwrap()
            .expect("constant complement exists here");
        // warm call agrees with the cold one
        let warm = session
            .complement_preserving(&update)
            .unwrap()
            .expect("still exists");
        assert_eq!(
            script_to_term(&by_session, &alpha),
            script_to_term(&warm, &alpha)
        );
        // and with the first-principles free function
        let inst = Instance::new(&dtd, &ann, &doc, &update, alpha.len()).unwrap();
        let cm = engine.cost_model();
        let forest = PropagationForest::build(&inst, &cm).unwrap();
        let free =
            crate::complement::find_complement_preserving(&inst, &forest, &cm, engine.config())
                .unwrap()
                .expect("constant complement exists here");
        assert_eq!(
            script_to_term(&by_session, &alpha),
            script_to_term(&free, &alpha)
        );
        // the paper's S0 case still reports non-existence through the
        // session path
        let (engine2, t0, s0) = paper_engine();
        let session2 = engine2.open(&t0).unwrap();
        assert!(session2.complement_preserving(&s0).unwrap().is_none());
    }
}
