//! Integration: the recursive outline scenario — propagation through a
//! self-referential schema, served by a compiled [`Engine`].

use xml_view_update::prelude::*;
use xml_view_update::workload::scenario::{add_section, outline, outline_doc};

fn outline_engine(o: &xml_view_update::workload::scenario::Outline) -> Engine {
    Engine::builder()
        .alphabet(o.alpha.clone())
        .dtd(o.dtd.clone())
        .annotation(o.ann.clone())
        .build()
        .unwrap()
}

#[test]
fn adding_sections_at_every_level_propagates() {
    let o = outline();
    let mut gen = NodeIdGen::new();
    let doc = outline_doc(&o, 3, 2, &mut gen);

    let engine = outline_engine(&o);
    let mut session = engine.open(&doc).unwrap();
    for path in [&[][..], &[0][..], &[1, 1][..], &[0, 0, 1][..]] {
        let mut gen = session.id_gen();
        let s = add_section(&o, session.document(), path, &mut gen);
        let prop = session.propagate(&s).unwrap();
        session.verify(&s, &prop.script).unwrap();
        // a fresh section is all-visible: no invisible padding needed
        assert_eq!(prop.cost, 2, "path {path:?}");
        session.commit(&prop).unwrap();
        assert!(engine.dtd().is_valid(session.document()));
    }
    assert_eq!(session.commits(), 4);
}

#[test]
fn deleting_a_section_removes_hidden_paragraphs_recursively() {
    let o = outline();
    let mut gen = NodeIdGen::new();
    let doc = outline_doc(&o, 2, 2, &mut gen);

    let engine = outline_engine(&o);
    let session = engine.open(&doc).unwrap();

    // delete the first top-level subsection (a whole subtree of sections
    // with hidden paras inside)
    let g = |s: &str| o.alpha.get(s).unwrap();
    let view = session.view();
    let first_sub = view
        .children(view.root())
        .iter()
        .copied()
        .find(|&c| view.label(c) == g("section"))
        .unwrap();
    let mut b = UpdateBuilder::new(view);
    b.delete(first_sub).unwrap();
    let s = b.finish();

    let prop = session.propagate(&s).unwrap();
    session.verify(&s, &prop.script).unwrap();
    // the deleted subtree: a depth-1 section containing 2 leaf sections,
    // each section = 1 + title + 2 paras + note (5)... in the source:
    // section subtree sizes: leaf = 1 + 4 = 5; depth-1 = 1 + 1(title) +
    // 2×5 + 3(paras+note) = 15.
    assert_eq!(prop.cost, 15);
    let out = output_tree(&prop.script).unwrap();
    assert_eq!(out.size(), doc.size() - 15);

    // typing is preserved for every surviving node
    let report = typing_report(engine.dtd(), engine.alphabet().len(), &prop.script);
    assert!(report.fully_preserved());
}

#[test]
fn outline_view_dtd_is_recursive() {
    use xml_view_update::automata::Dfa;
    let o = outline();
    let mut alpha = o.alpha.clone();
    let engine = outline_engine(&o);
    // skeleton content model: title . section*
    let expect = xml_view_update::automata::glushkov(
        &xml_view_update::automata::parse_regex(&mut alpha, "title.section*").unwrap(),
    );
    let s = alpha.get("section").unwrap();
    let got = Dfa::determinize(engine.view_dtd().content_model(s), alpha.len());
    assert!(got.equivalent(&Dfa::determinize(&expect, alpha.len())));
}

#[test]
fn complement_preserving_exists_for_pure_visible_edits() {
    // Adding a title-only section never touches hidden material, so a
    // constant-complement propagation exists here — contrast with the
    // running example where it does not.
    let o = outline();
    let mut gen = NodeIdGen::new();
    let doc = outline_doc(&o, 2, 2, &mut gen);
    let s = add_section(&o, &doc, &[0], &mut gen);

    let engine = outline_engine(&o);
    let session = engine.open(&doc).unwrap();
    let inst = session.instance(&s).unwrap();
    let cm = engine.cost_model();
    let forest = PropagationForest::build(&inst, &cm).unwrap();
    let found = find_complement_preserving(&inst, &forest, &cm, engine.config())
        .unwrap()
        .expect("pure visible edits admit a constant complement");
    verify_propagation(&inst, &found).unwrap();
    assert!(invisible_impact(&inst, &found).is_constant_complement());
}
