//! Integration: the recursive outline scenario — propagation through a
//! self-referential schema.

use xml_view_update::prelude::*;
use xml_view_update::workload::scenario::{add_section, outline, outline_doc};

#[test]
fn adding_sections_at_every_level_propagates() {
    let o = outline();
    let mut gen = NodeIdGen::new();
    let mut doc = outline_doc(&o, 3, 2, &mut gen);

    for path in [&[][..], &[0][..], &[1, 1][..], &[0, 0, 1][..]] {
        let s = add_section(&o, &doc, path, &mut gen);
        let inst = Instance::new(&o.dtd, &o.ann, &doc, &s, o.alpha.len()).unwrap();
        let prop = propagate(&inst, &InsertletPackage::new(), &Config::default()).unwrap();
        verify_propagation(&inst, &prop.script).unwrap();
        // a fresh section is all-visible: no invisible padding needed
        assert_eq!(prop.cost, 2, "path {path:?}");
        doc = output_tree(&prop.script).unwrap();
        for id in doc.node_ids() {
            gen.bump_past(id);
        }
        assert!(o.dtd.is_valid(&doc));
    }
}

#[test]
fn deleting_a_section_removes_hidden_paragraphs_recursively() {
    let o = outline();
    let mut gen = NodeIdGen::new();
    let doc = outline_doc(&o, 2, 2, &mut gen);
    let view = extract_view(&o.ann, &doc);

    // delete the first top-level subsection (a whole subtree of sections
    // with hidden paras inside)
    let g = |s: &str| o.alpha.get(s).unwrap();
    let first_sub = view
        .children(view.root())
        .iter()
        .copied()
        .find(|&c| view.label(c) == g("section"))
        .unwrap();
    let mut b = UpdateBuilder::new(&view);
    b.delete(first_sub).unwrap();
    let s = b.finish();

    let inst = Instance::new(&o.dtd, &o.ann, &doc, &s, o.alpha.len()).unwrap();
    let prop = propagate(&inst, &InsertletPackage::new(), &Config::default()).unwrap();
    verify_propagation(&inst, &prop.script).unwrap();
    // the deleted subtree: a depth-1 section containing 2 leaf sections,
    // each section = 1 + title + 2 paras + note (5)... in the source:
    // section subtree sizes: leaf = 1 + 4 = 5; depth-1 = 1 + 1(title) +
    // 2×5 + 3(paras+note) = 15.
    assert_eq!(prop.cost, 15);
    let out = output_tree(&prop.script).unwrap();
    assert_eq!(out.size(), doc.size() - 15);

    // typing is preserved for every surviving node
    let report = typing_report(&o.dtd, o.alpha.len(), &prop.script);
    assert!(report.fully_preserved());
}

#[test]
fn outline_view_dtd_is_recursive() {
    use xml_view_update::automata::Dfa;
    let o = outline();
    let mut alpha = o.alpha.clone();
    let view_dtd = derive_view_dtd(&o.dtd, &o.ann, alpha.len());
    // skeleton content model: title . section*
    let expect = xml_view_update::automata::glushkov(
        &xml_view_update::automata::parse_regex(&mut alpha, "title.section*").unwrap(),
    );
    let s = alpha.get("section").unwrap();
    let got = Dfa::determinize(view_dtd.content_model(s), alpha.len());
    assert!(got.equivalent(&Dfa::determinize(&expect, alpha.len())));
}

#[test]
fn complement_preserving_exists_for_pure_visible_edits() {
    // Adding a title-only section never touches hidden material, so a
    // constant-complement propagation exists here — contrast with the
    // running example where it does not.
    let o = outline();
    let mut gen = NodeIdGen::new();
    let doc = outline_doc(&o, 2, 2, &mut gen);
    let s = add_section(&o, &doc, &[0], &mut gen);
    let inst = Instance::new(&o.dtd, &o.ann, &doc, &s, o.alpha.len()).unwrap();
    let sizes = min_sizes(&o.dtd, o.alpha.len());
    let pkg = InsertletPackage::new();
    let cm = CostModel {
        sizes: &sizes,
        insertlets: &pkg,
    };
    let forest = PropagationForest::build(&inst, &cm).unwrap();
    let found = find_complement_preserving(&inst, &forest, &cm, &Config::default())
        .unwrap()
        .expect("pure visible edits admit a constant complement");
    verify_propagation(&inst, &found).unwrap();
    assert!(invisible_impact(&inst, &found).is_constant_complement());
}
