//! Observational equivalence of session-persistent propagation caching.
//!
//! The dirty-region cache (`Session`'s `PropCache`) must be invisible in
//! every observable: for random documents and random update sequences
//! driven through one long-lived session, cached propagation must produce
//! byte-identical results — cost, script, optimal-propagation count — to
//! the cache-disabled path and to fresh per-step computation, across
//! commits that invalidate only the dirty region.

use proptest::prelude::*;
use xml_view_update::prelude::*;
use xml_view_update::workload::replay::instance_dump;
use xml_view_update::workload::{
    generate_annotation, generate_doc, generate_dtd, generate_update, ChurnConfig, ChurnStream,
    DocGenConfig, DtdGenConfig, UpdateGenConfig,
};

/// Everything observable about a propagation: cost, the exact script
/// (identifier-sensitive term form), and the optimal count.
fn fingerprint(p: &Propagation, alpha: &Alphabet) -> (u64, String, Option<u128>) {
    (
        p.cost,
        script_to_term(&p.script, alpha),
        count_optimal_propagations(&p.forest),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random update sequences through one long-lived session: at every
    /// step, (a) a cold and a warm propagate on a fresh session are
    /// byte-identical to a fresh one-shot `Instance` (the warm call is
    /// served from a populated cache); (b) the long-lived cached and
    /// uncached sessions agree byte-for-byte with each other and with the
    /// one-shot on cost and count; (c) commits keep both sessions in
    /// lock-step.
    #[test]
    fn session_cache_matches_one_shot(seed in 0u64..1500) {
        let mut alpha = Alphabet::new();
        let dtd = generate_dtd(&mut alpha, &DtdGenConfig::default(), seed);
        let ann = generate_annotation(&alpha, 0.3, seed ^ 71, &[]);
        let root = alpha.get("l0").unwrap();
        let mut gen = NodeIdGen::new();
        let doc = generate_doc(&dtd, alpha.len(), root,
            &DocGenConfig { max_depth: 4, max_children: 5, ..DocGenConfig::default() },
            seed ^ 72, &mut gen);

        let engine = Engine::builder()
            .alphabet(alpha.clone())
            .dtd(dtd.clone())
            .annotation(ann.clone())
            .build()
            .unwrap();
        let uncached_engine = Engine::builder()
            .alphabet(alpha.clone())
            .dtd(dtd.clone())
            .annotation(ann.clone())
            .prop_cache(false)
            .build()
            .unwrap();

        let mut cached = engine.open(&doc).unwrap();
        let mut uncached = uncached_engine.open(&doc).unwrap();
        let mut chain_doc = doc; // the fresh-one-shot chain's document

        for step in 0..4u64 {
            let mut g = cached.id_gen();
            let update = generate_update(&dtd, &ann, alpha.len(), &chain_doc,
                &UpdateGenConfig { ops: 2, ..UpdateGenConfig::default() },
                seed ^ (3000 + step), &mut g);

            // replayable context for every assertion at this step: the
            // seed rebuilds the whole chain, the dump pins the exact
            // document + update the step saw
            let dump = instance_dump(
                &format!("session_cache_matches_one_shot seed {seed}, step {step}"),
                &alpha, &dtd, &ann, &chain_doc, &update,
            );

            // fresh one-shot against the chain document
            let inst = Instance::new(&dtd, &ann, &chain_doc, &update, alpha.len()).unwrap();
            let one_shot = propagate(&inst, &InsertletPackage::new(), &Config::default()).unwrap();
            let os_fp = fingerprint(&one_shot, &alpha);

            // a fresh session on the same document: the cold call fills
            // its cache, the warm call is served from it; both must be
            // byte-identical to the one-shot
            let fresh = engine.open(&chain_doc).unwrap();
            let cold = fresh.propagate(&update).unwrap();
            let warm = fresh.propagate(&update).unwrap();
            prop_assert_eq!(fingerprint(&cold, &alpha), os_fp.clone(), "cold\n{}", dump);
            prop_assert_eq!(fingerprint(&warm, &alpha), os_fp.clone(), "warm\n{}", dump);

            // long-lived sessions: cache on vs off, byte-identical
            let pc = cached.propagate(&update).unwrap();
            let pu = uncached.propagate(&update).unwrap();
            prop_assert_eq!(
                fingerprint(&pc, &alpha),
                fingerprint(&pu, &alpha),
                "cached vs uncached session\n{}", dump
            );
            // and they agree with the one-shot on every gen-independent
            // observable (hidden insertlet identifiers may differ once the
            // session's high-water mark outruns the chain's)
            prop_assert_eq!(pc.cost, one_shot.cost, "cost vs one-shot\n{}", dump);
            prop_assert_eq!(
                count_optimal_propagations(&pc.forest),
                count_optimal_propagations(&one_shot.forest),
                "count vs one-shot\n{}", dump
            );
            let out_session = output_tree(&pc.script).unwrap();
            let out_chain = output_tree(&one_shot.script).unwrap();
            prop_assert!(out_session.isomorphic(&out_chain), "outputs isomorphic\n{}", dump);
            prop_assert_eq!(
                extract_view(&ann, &out_session),
                extract_view(&ann, &out_chain),
                "user-visible effect exact\n{}", dump
            );

            cached.commit(&pc).unwrap();
            uncached.commit(&pu).unwrap();
            prop_assert_eq!(cached.document(), uncached.document(), "commit lock-step\n{}", dump);
            chain_doc = out_chain;
        }
        prop_assert_eq!(cached.commits(), 4);
    }
}

/// A second update landing *inside* a previously-dirty region must never
/// read stale memos: after a commit that edited one department, another
/// edit of the same department propagates byte-identically to a fresh
/// session that never had a cache to go stale.
#[test]
fn second_update_inside_dirty_region_never_reads_stale_memos() {
    let mut alpha = Alphabet::new();
    let dtd = parse_dtd(&mut alpha, "r -> d*\nd -> (a.h?)*").unwrap();
    let ann = parse_annotation(&mut alpha, "hide d h").unwrap();
    let mut gen = NodeIdGen::new();
    let doc = xml_view_update::tree::parse_term_with_ids(
        &mut alpha,
        &mut gen,
        "r#0(d#1(a#2, h#3, a#4), d#5(a#6), d#7(a#8, h#9))",
    )
    .unwrap();
    let engine = Engine::builder()
        .alphabet(alpha.clone())
        .dtd(dtd)
        .annotation(ann)
        .build()
        .unwrap();
    let mut session = engine.open(&doc).unwrap();

    // Warm every memo with an identity update, then dirty d#1's region.
    session.propagate(&nop_script(session.view())).unwrap();
    let u1 = parse_script(
        &mut alpha,
        "nop:r#0(nop:d#1(nop:a#2, nop:a#4, ins:a#20), nop:d#5(nop:a#6), nop:d#7(nop:a#8))",
    )
    .unwrap();
    let p1 = session.propagate(&u1).unwrap();
    session.commit(&p1).unwrap();
    let after_commit = session.cache_stats();
    assert!(
        after_commit.invalidated >= 2,
        "commit must invalidate the dirty region (d#1 + r#0): {after_commit:?}"
    );

    // Second update inside the previously-dirty region: delete the very
    // node the first update inserted, and one of the originals.
    let u2 = parse_script(
        &mut alpha,
        "nop:r#0(nop:d#1(nop:a#2, del:a#4, del:a#20), nop:d#5(nop:a#6), nop:d#7(nop:a#8))",
    )
    .unwrap();
    let p2 = session.propagate(&u2).unwrap();

    // A fresh session on the post-commit document has no cache that could
    // be stale; byte-identity proves the long-lived session read no stale
    // memo either. (No hidden material is minted under this schema, so
    // identifier frontiers cannot diverge.)
    let fresh = engine.open(session.document()).unwrap();
    let p2_fresh = fresh.propagate(&u2).unwrap();
    assert_eq!(p2.cost, p2_fresh.cost);
    assert_eq!(
        script_to_term(&p2.script, &alpha),
        script_to_term(&p2_fresh.script, &alpha)
    );
    assert_eq!(
        count_optimal_propagations(&p2.forest),
        count_optimal_propagations(&p2_fresh.forest)
    );

    // And the carried-over clean region genuinely served hits (d#5, d#7,
    // their a's — state survived the commit).
    let stats = session.cache_stats();
    assert!(
        stats.hits > 0,
        "clean region must hit across the commit: {stats:?}"
    );
}

/// Churn streams (localized small edits, commit after every propagate)
/// through cached and uncached sessions stay in lock-step for the whole
/// stream — the serving-shaped version of the equivalence property.
#[test]
fn churn_stream_cached_equals_uncached() {
    use xml_view_update::workload::scenario::{hospital, hospital_doc, Hospital};
    for seed in [3u64, 17, 40] {
        let Hospital { alpha, dtd, ann } = hospital();
        let h = Hospital {
            alpha: alpha.clone(),
            dtd: dtd.clone(),
            ann: ann.clone(),
        };
        let mut gen = NodeIdGen::new();
        let doc = hospital_doc(&h, 3, 10, &mut gen);
        let engine = Engine::builder()
            .alphabet(alpha.clone())
            .dtd(dtd.clone())
            .annotation(ann.clone())
            .build()
            .unwrap();
        let mut cached = engine.open(&doc).unwrap();
        let mut uncached = engine.open(&doc).unwrap();
        uncached.set_cache_enabled(false);
        let mut stream = ChurnStream::new(&dtd, &ann, alpha.len(), ChurnConfig::default(), seed);
        for step in 0..8 {
            let mut g = cached.id_gen();
            let u = stream.next_update(cached.document(), &mut g);
            let dump = instance_dump(
                &format!("churn_stream_cached_equals_uncached seed {seed}, step {step}"),
                &alpha,
                &dtd,
                &ann,
                cached.document(),
                &u,
            );
            let pc = cached.propagate(&u).unwrap();
            let pu = uncached.propagate(&u).unwrap();
            assert_eq!(
                fingerprint(&pc, &alpha),
                fingerprint(&pu, &alpha),
                "cached vs uncached\n{dump}"
            );
            cached.commit(&pc).unwrap();
            uncached.commit(&pu).unwrap();
            assert_eq!(cached.document(), uncached.document(), "commit\n{dump}");
        }
        let stats = cached.cache_stats();
        assert!(stats.hits > 0, "churn must exercise the cache: {stats:?}");
        assert!(stats.invalidated > 0, "commits must invalidate: {stats:?}");
    }
}
