//! End-to-end serving determinism: the daemon must be observationally
//! identical to direct library sessions at fleet scale.
//!
//! The fleet generator executes every operation against a long-lived
//! [`xml_view_update::Session`] per document while recording `(cost,
//! script-term, count, view-term)` fingerprints; [`run_fleet`] then
//! replays the identical operation streams over real TCP connections
//! against the daemon — admission queue, worker pool, LRU eviction,
//! write-back, identifier-floor restoration and all — and diffs every
//! reply. Any nondeterminism in the serving stack shows up as a
//! mismatch naming the exact operation.

use xml_view_update::server::{run_fleet, run_fleet_from_corpus, FleetReport, ServerConfig};
use xml_view_update::workload::fleet::{generate_fleet, FleetConfig, FleetPlan};

/// ≥ 32 documents over Zipf popularity, enough committed edits to push
/// the request count past 1000 (the PR's acceptance floor).
fn full_scale_plan() -> FleetPlan {
    let plan = generate_fleet(&FleetConfig {
        docs: 36,
        families: 6,
        clients: 6,
        updates: 340,
        seed: 0x5E12_F1EE,
        ..FleetConfig::default()
    });
    assert!(plan.docs.len() >= 32, "corpus: {} docs", plan.docs.len());
    assert!(
        plan.request_count() + plan.docs.len() >= 1000,
        "plan too small: {} requests",
        plan.request_count() + plan.docs.len()
    );
    plan
}

fn assert_clean(report: &FleetReport, label: &str) {
    assert!(
        report.mismatches.is_empty(),
        "{label}: daemon diverged from direct sessions ({} mismatches):\n{}",
        report.mismatches.len(),
        report.mismatches.join("\n")
    );
    assert_eq!(report.protocol_errors, 0, "{label}: protocol errors");
    assert_eq!(report.stats.errors, 0, "{label}: server error replies");
    assert!(
        report.drained_clean,
        "{label}: shutdown left work in flight"
    );
}

#[test]
fn daemon_is_deterministically_equal_to_direct_sessions_at_fleet_scale() {
    let plan = full_scale_plan();
    // each client keeps one document open at a time, so a pool smaller
    // than the client count forces evictions (and occasional retry
    // pushback when every resident session is leased at once) throughout
    // the run — all of it observationally invisible
    let report = run_fleet(
        &plan,
        ServerConfig {
            workers: 2,
            queue_capacity: 32,
            pool_capacity: 4,
            retry_after_ms: 1,
        },
    )
    .expect("daemon runs");
    assert_clean(&report, "pool=4");
    assert!(
        report.requests >= 1000,
        "served {} requests",
        report.requests
    );
    assert!(
        report.stats.evictions > 0,
        "a 4-session pool under 6 clients must evict"
    );
    // the latency histograms saw every request
    let observed = report.stats.write_latency.count() + report.stats.read_latency.count();
    assert!(
        observed >= report.requests - report.retries,
        "latency histograms undercounted: {observed} < {}",
        report.requests
    );
}

#[test]
fn snapshot_corpus_serving_is_byte_identical_to_term_loading() {
    // the same plan served two ways: documents loaded over the wire as
    // terms (parse path) versus preloaded from a packed flat-snapshot
    // corpus (bulk-decode path). Every reply is diffed against the same
    // recorded fingerprints, so both runs passing means the two load
    // paths produce byte-identical serving behaviour.
    let plan = generate_fleet(&FleetConfig {
        docs: 16,
        families: 4,
        clients: 4,
        updates: 80,
        seed: 0x5A47_C0DE,
        ..FleetConfig::default()
    });
    let cfg = ServerConfig {
        workers: 2,
        queue_capacity: 16,
        pool_capacity: 4,
        retry_after_ms: 1,
    };
    let term_report = run_fleet(&plan, cfg.clone()).expect("term-load daemon runs");
    assert_clean(&term_report, "term-load");
    let snap_report = run_fleet_from_corpus(&plan, cfg).expect("snapshot daemon runs");
    assert_clean(&snap_report, "snapshot-corpus");
    // the snapshot run skips the per-document load requests; everything
    // else in the two request streams is identical
    assert_eq!(
        term_report.requests,
        snap_report.requests + plan.docs.len() as u64,
        "request accounting: term {} vs snapshot {}",
        term_report.requests,
        snap_report.requests
    );
}

#[test]
fn daemon_fingerprints_are_stable_across_pool_sizes() {
    // fingerprints are recorded once by the generator; replaying under a
    // starved pool and a roomy pool must both match them — evictions are
    // observationally invisible
    let plan = generate_fleet(&FleetConfig {
        docs: 16,
        families: 4,
        clients: 4,
        updates: 60,
        seed: 0xBEEF_CAFE,
        ..FleetConfig::default()
    });
    for pool_capacity in [2, 64] {
        let report = run_fleet(
            &plan,
            ServerConfig {
                workers: 2,
                queue_capacity: 16,
                pool_capacity,
                retry_after_ms: 1,
            },
        )
        .expect("daemon runs");
        assert_clean(&report, &format!("pool={pool_capacity}"));
    }
}
