//! Edge cases and failure injection across the public API.
//!
//! Some tests here deliberately drive the one-shot compatibility layer
//! (`Instance::new` + `propagate`) rather than [`Engine`]/[`Session`]:
//! both entry points must keep working, and the one-shot path is the
//! simplest harness for failure injection.

use xml_view_update::prelude::*;

fn d0(alpha: &mut Alphabet) -> Dtd {
    parse_dtd(alpha, "r -> (a.(b+c).d)*\nd -> ((a+b).c)*").unwrap()
}

fn a0(alpha: &mut Alphabet) -> Annotation {
    parse_annotation(alpha, "hide r b\nhide r c\nhide d a\nhide d b").unwrap()
}

#[test]
fn single_node_document_identity() {
    let mut alpha = Alphabet::new();
    let dtd = d0(&mut alpha);
    let ann = a0(&mut alpha);
    let mut gen = NodeIdGen::new();
    let t = parse_term_with_ids(&mut alpha, &mut gen, "r#0").unwrap();
    let view = extract_view(&ann, &t);
    assert_eq!(view.size(), 1);
    let s = nop_script(&view);
    let inst = Instance::new(&dtd, &ann, &t, &s, alpha.len()).unwrap();
    let prop = propagate(&inst, &InsertletPackage::new(), &Config::default()).unwrap();
    assert_eq!(prop.cost, 0);
    assert_eq!(output_tree(&prop.script).unwrap(), t);
}

#[test]
fn everything_hidden_view_is_root_only() {
    // Hide all children of r: the user sees only the root; any update it
    // could make is the identity, which must not disturb the source.
    let mut alpha = Alphabet::new();
    let dtd = d0(&mut alpha);
    let ann = parse_annotation(&mut alpha, "hide r a\nhide r b\nhide r c\nhide r d").unwrap();
    let mut gen = NodeIdGen::new();
    let t = parse_term_with_ids(&mut alpha, &mut gen, "r#0(a#1, b#2, d#3(a#4, c#5))").unwrap();
    let view = extract_view(&ann, &t);
    assert_eq!(view.size(), 1);
    let s = nop_script(&view);
    let inst = Instance::new(&dtd, &ann, &t, &s, alpha.len()).unwrap();
    let prop = propagate(&inst, &InsertletPackage::new(), &Config::default()).unwrap();
    assert_eq!(prop.cost, 0);
    assert_eq!(
        output_tree(&prop.script).unwrap(),
        t,
        "hidden data untouched"
    );
}

#[test]
fn delete_everything_visible() {
    let mut alpha = Alphabet::new();
    let dtd = d0(&mut alpha);
    let ann = a0(&mut alpha);
    let mut gen = NodeIdGen::new();
    let t = parse_term_with_ids(
        &mut alpha,
        &mut gen,
        "r#0(a#1, b#2, d#3(a#7, c#8), a#4, c#5, d#6(b#9, c#10))",
    )
    .unwrap();
    let engine = Engine::builder()
        .alphabet(alpha)
        .dtd(dtd)
        .annotation(ann)
        .build()
        .unwrap();
    let mut session = engine.open(&t).unwrap();
    let view = session.view();
    let mut b = UpdateBuilder::new(view);
    for &k in view.children(view.root()) {
        b.delete(k).unwrap();
    }
    let s = b.finish();
    let prop = session.propagate(&s).unwrap();
    session.verify(&s, &prop.script).unwrap();
    session.commit(&prop).unwrap();
    // Everything but the root must go: visible deletions drag their
    // hidden groups along to keep r's word valid.
    assert_eq!(session.document().size(), 1);
    assert_eq!(prop.cost, 10);
}

#[test]
fn unsatisfiable_insert_label_is_a_typed_error() {
    // x → x is unsatisfiable; a view update inserting x can never yield a
    // valid view, and instance validation must say so.
    let mut alpha = Alphabet::new();
    let dtd = parse_dtd(&mut alpha, "r -> a*.x?\nx -> x").unwrap();
    let ann = Annotation::all_visible();
    let mut gen = NodeIdGen::new();
    let t = parse_term_with_ids(&mut alpha, &mut gen, "r#0(a#1)").unwrap();
    let s = parse_script(&mut alpha, "nop:r#0(nop:a#1, ins:x#9)").unwrap();
    let err = Instance::new(&dtd, &ann, &t, &s, alpha.len()).unwrap_err();
    // x#9 would need an x-child forever: Out(S) is not a view of any
    // document.
    assert!(matches!(
        err,
        PropagateError::OutputNotAView(_) | PropagateError::Edit(_)
    ));
}

#[test]
fn witness_budget_exhaustion_surfaces_as_error() {
    // Exponential DTD hidden under the root: propagation must materialise
    // a 2^12-node fragment; with a tiny budget it reports the problem
    // instead of hanging or panicking.
    let mut alpha = Alphabet::new();
    let mut src = String::from("r -> v.a\n");
    src.push_str("a -> a10.a10\n");
    for i in (1..=10).rev() {
        src.push_str(&format!("a{i} -> a{}.a{}\n", i - 1, i - 1));
    }
    let dtd = parse_dtd(&mut alpha, &src).unwrap();
    let ann = parse_annotation(&mut alpha, "hide r a").unwrap();
    let mut gen = NodeIdGen::new();
    // source: r(v, a(...)) — build it via the minimal witness
    let sizes = min_sizes(&dtd, alpha.len());
    let r = alpha.get("r").unwrap();
    let t = minimal_witness(&dtd, &sizes, r, &mut gen, 1 << 20).unwrap();
    assert!(t.size() > 4000);
    let view = extract_view(&ann, &t);
    assert_eq!(view.size(), 2); // r(v)

    // the user deletes v and re-inserts it — the propagation keeps the
    // hidden a-subtree via Nop edges, so this must succeed cheaply…
    let mut b = UpdateBuilder::new(&view);
    let vnode = view.children(view.root())[0];
    b.delete(vnode).unwrap();
    let v_new = parse_term(&mut alpha, &mut gen, "v").unwrap();
    b.insert(view.root(), 0, v_new).unwrap();
    let s = b.finish();
    let inst = Instance::new(&dtd, &ann, &t, &s, alpha.len()).unwrap();
    let cfg = Config {
        witness_budget: 10,
        ..Config::default()
    };
    let prop = propagate(&inst, &InsertletPackage::new(), &cfg).unwrap();
    verify_propagation(&inst, &prop.script).unwrap();
    assert_eq!(prop.cost, 2);

    // …but deleting the *hidden* part by deleting-and-reinserting nothing
    // visible cannot force materialisation. Force it instead: a fresh
    // empty source r(v) cannot exist (a is mandatory), so inverting the
    // view r(v) needs a fresh a-fragment and must hit the budget.
    let inv_forest = {
        let pkg = InsertletPackage::new();
        let cm = CostModel {
            sizes: &sizes,
            insertlets: &pkg,
        };
        InversionForest::build(&dtd, &ann, &view, &cm).unwrap()
    };
    let pkg = InsertletPackage::new();
    let cm = CostModel {
        sizes: &sizes,
        insertlets: &pkg,
    };
    let mut gen2 = NodeIdGen::starting_at(1 << 30);
    let err = inv_forest
        .materialize_min(&dtd, &cm, Selector::PreferNop, &mut gen2, 10)
        .unwrap_err();
    assert!(matches!(err, PropagateError::Materialisation(_)), "{err:?}");
    // with insertlets the same inversion succeeds within the tiny budget
    let mut gen3 = NodeIdGen::starting_at(1 << 31);
    let mut full = InsertletPackage::new();
    let a = alpha.get("a").unwrap();
    let w = minimal_witness(&dtd, &sizes, a, &mut gen3, 1 << 20).unwrap();
    full.insert(&dtd, &sizes, a, w).unwrap();
    let cm2 = CostModel {
        sizes: &sizes,
        insertlets: &full,
    };
    let inv = inv_forest
        .materialize_min(&dtd, &cm2, Selector::PreferNop, &mut gen3, 10)
        .unwrap();
    assert!(dtd.is_valid(&inv));
}

#[test]
fn deep_documents_work_with_adequate_stack() {
    // Several pipeline stages recurse proportionally to document *depth*
    // (graph assembly follows the Nop skeleton). Real XML rarely exceeds
    // depth ~100; for pathological depths the documented pattern is a
    // dedicated thread with a larger stack — which is what this test
    // exercises at depth 2000.
    std::thread::Builder::new()
        .stack_size(64 << 20)
        .spawn(|| {
            let mut alpha = Alphabet::new();
            let dtd = parse_dtd(&mut alpha, "n -> n?").unwrap();
            let ann = Annotation::all_visible();
            let mut gen = NodeIdGen::new();
            let n = alpha.get("n").unwrap();
            let mut t = Tree::leaf(&mut gen, n);
            let mut cur = t.root();
            for _ in 0..2000 {
                cur = t.add_child(cur, &mut gen, n);
            }
            assert!(dtd.is_valid(&t));
            let view = extract_view(&ann, &t);
            assert_eq!(view.size(), 2001);
            let s = nop_script(&view);
            let inst = Instance::new(&dtd, &ann, &t, &s, alpha.len()).unwrap();
            let prop = propagate(&inst, &InsertletPackage::new(), &Config::default()).unwrap();
            assert_eq!(prop.cost, 0);
        })
        .expect("spawn")
        .join()
        .expect("deep pipeline must succeed");
}

#[test]
fn moderately_deep_documents_work_on_default_stacks() {
    // Depth 300 — beyond any realistic XML — must work without special
    // stack arrangements even on the 2 MiB test-thread stack.
    let mut alpha = Alphabet::new();
    let dtd = parse_dtd(&mut alpha, "n -> n?").unwrap();
    let ann = Annotation::all_visible();
    let mut gen = NodeIdGen::new();
    let n = alpha.get("n").unwrap();
    let mut t = Tree::leaf(&mut gen, n);
    let mut cur = t.root();
    for _ in 0..300 {
        cur = t.add_child(cur, &mut gen, n);
    }
    let view = extract_view(&ann, &t);
    let s = nop_script(&view);
    let inst = Instance::new(&dtd, &ann, &t, &s, alpha.len()).unwrap();
    let prop = propagate(&inst, &InsertletPackage::new(), &Config::default()).unwrap();
    assert_eq!(prop.cost, 0);
}

#[test]
fn wide_documents_are_fine() {
    let mut alpha = Alphabet::new();
    let dtd = parse_dtd(&mut alpha, "r -> a*").unwrap();
    let ann = Annotation::all_visible();
    let mut gen = NodeIdGen::new();
    let r = alpha.get("r").unwrap();
    let a = alpha.get("a").unwrap();
    let mut t = Tree::leaf(&mut gen, r);
    let root = t.root();
    for _ in 0..20_000 {
        t.add_child(root, &mut gen, a);
    }
    let view = extract_view(&ann, &t);
    let mut b = UpdateBuilder::new(&view);
    let new_a = parse_term(&mut alpha, &mut gen, "a").unwrap();
    b.insert(view.root(), 10_000, new_a).unwrap();
    let s = b.finish();
    let inst = Instance::new(&dtd, &ann, &t, &s, alpha.len()).unwrap();
    let prop = propagate(&inst, &InsertletPackage::new(), &Config::default()).unwrap();
    assert_eq!(prop.cost, 1);
    verify_propagation(&inst, &prop.script).unwrap();
}

#[test]
fn complement_and_typing_integration() {
    // The new analyses compose with the pipeline end to end.
    let fx = xml_view_update::workload::paper::running_example();
    let inst = Instance::new(&fx.dtd, &fx.ann, &fx.t0, &fx.s0, fx.alpha.len()).unwrap();
    let prop = propagate(&inst, &InsertletPackage::new(), &Config::default()).unwrap();

    let impact = invisible_impact(&inst, &prop.script);
    assert_eq!(impact.churn(), 6); // 2 hidden deleted + 4 padding inserted
    assert!(!impact.is_constant_complement());

    let sizes = min_sizes(&fx.dtd, fx.alpha.len());
    let pkg = InsertletPackage::new();
    let cm = CostModel {
        sizes: &sizes,
        insertlets: &pkg,
    };
    let none = find_complement_preserving(&inst, &prop.forest, &cm, &Config::default()).unwrap();
    assert!(none.is_none(), "S0 forces invisible churn");

    let report = typing_report(&fx.dtd, fx.alpha.len(), &prop.script);
    assert!(report.fully_preserved());
}

#[test]
fn composed_session_equals_stepwise_propagation_result() {
    // Propagate two successive view updates through one session and
    // compose them; the composition applied to the original source gives
    // the session's final document.
    let fx = xml_view_update::workload::paper::running_example();
    let engine = Engine::builder()
        .alphabet(fx.alpha.clone())
        .dtd(fx.dtd.clone())
        .annotation(fx.ann.clone())
        .build()
        .unwrap();
    let mut session = engine.open(&fx.t0).unwrap();
    let p1 = session.apply(&fx.s0).unwrap();

    // second round: identity on the new view (keeps it simple and still
    // exercises compose through the propagation scripts)
    let s2 = nop_script(session.view());
    let p2 = session.apply(&s2).unwrap();

    let composed = compose(&p1.script, &p2.script).unwrap();
    assert_eq!(input_tree(&composed).unwrap(), fx.t0);
    assert_eq!(
        apply(&composed, &fx.t0).unwrap(),
        session.document().clone()
    );
}
