//! The checked-in snapshot fixture: a packed hospital corpus that pins
//! the on-disk format. If an encoder change alters the byte layout,
//! this test fails before any deployed corpus does — bump
//! `SNAPSHOT_FORMAT_VERSION` and regenerate instead of silently
//! changing version 1:
//!
//! ```text
//! cargo test --test snapshot_fixture -- --ignored regenerate
//! ```

use xml_view_update::prelude::*;
use xml_view_update::tree::{CorpusBuilder, SnapshotFile};
use xml_view_update::workload::scenario::{hospital, hospital_doc};

fn fixture_path() -> &'static str {
    concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/hospital.xvus")
}

/// The fixture's content, rebuilt from the deterministic generator: one
/// hospital document (3 departments × 4 patients, full records) packed
/// as corpus doc 0, family 0.
fn expected_corpus_bytes() -> Vec<u8> {
    let h = hospital();
    let mut gen = NodeIdGen::new();
    let doc = hospital_doc(&h, 3, 4, &mut gen);
    let mut builder = CorpusBuilder::new();
    builder.push(0, 0, &doc, &h.alpha).expect("encodable");
    builder.finish()
}

#[test]
fn checked_in_hospital_fixture_loads_byte_identically() {
    let path = fixture_path();
    let on_disk = std::fs::read(path)
        .unwrap_or_else(|e| panic!("missing fixture {path}: {e} (run the regenerate test)"));
    assert_eq!(
        on_disk,
        expected_corpus_bytes(),
        "fixture bytes diverged from the encoder: the snapshot format \
         changed without a version bump"
    );

    let corpus = SnapshotFile::open(path).expect("fixture parses");
    assert_eq!(corpus.len(), 1);
    assert_eq!(corpus.entries()[0].doc_id, 0);
    assert_eq!(corpus.entries()[0].family, 0);

    let h = hospital();
    let mut alpha = h.alpha.clone();
    let tree = corpus.decode(0, &mut alpha).expect("fixture decodes");
    tree.validate().expect("decoded arena validates");
    assert_eq!(alpha.len(), h.alpha.len(), "no foreign labels");
    assert!(h.dtd.is_valid(&tree), "fixture document satisfies the DTD");
    // 1 hospital + 3 × (1 department + 4 × 8-node patient subtree)
    assert_eq!(tree.size(), 100);

    // the loaded tree re-encodes to the exact section bytes: load is a
    // faithful inverse of pack, with no re-indexing drift
    assert_eq!(
        tree.to_snapshot_bytes(&alpha).expect("re-encodable"),
        corpus.doc_bytes(0)
    );
}

/// Bless test: rewrites the fixture from the current encoder. Run only
/// after an intentional, version-bumped format change.
#[test]
#[ignore = "bless test: rewrites tests/fixtures/hospital.xvus"]
fn regenerate_hospital_fixture() {
    std::fs::create_dir_all(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures"))
        .expect("fixtures dir");
    std::fs::write(fixture_path(), expected_corpus_bytes()).expect("write fixture");
}
