//! Integration tests replaying every figure of the paper through the
//! public API (experiments E1–E6).

use xml_view_update::prelude::*;
use xml_view_update::workload::paper::{self, running_example};

fn engine_of(alpha: &Alphabet, dtd: &Dtd, ann: &Annotation) -> Engine {
    Engine::builder()
        .alphabet(alpha.clone())
        .dtd(dtd.clone())
        .annotation(ann.clone())
        .build()
        .unwrap()
}

/// E1 — Figures 1–3: source tree, DTD, annotation, view.
#[test]
fn e1_source_dtd_annotation_view() {
    let fx = running_example();
    // Fig. 1: t0 has 11 nodes with the exact identifier set.
    assert_eq!(fx.t0.size(), 11);
    for id in [0u64, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10] {
        assert!(fx.t0.contains(NodeId(id)), "t0 must contain n{id}");
    }
    // Fig. 2: t0 satisfies D0.
    fx.dtd.validate(&fx.t0).unwrap();
    // Fig. 3: the view is exactly r#0(a#1, d#3(c#8), a#4, d#6(c#10)).
    let view = extract_view(&fx.ann, &fx.t0);
    assert_eq!(
        to_term_with_ids(&view, &fx.alpha),
        "r#0(a#1, d#3(c#8), a#4, d#6(c#10))"
    );
    // The view DTD remark: r → (a·d)*, d → c* — precompiled by the
    // engine.
    let engine = engine_of(&fx.alpha, &fx.dtd, &fx.ann);
    assert!(engine.view_dtd().is_valid(&view));
    assert_eq!(engine.open(&fx.t0).unwrap().view(), &view);
}

/// E2 — Figures 4–5: the view update S0 and its projections.
#[test]
fn e2_update_projections() {
    let fx = running_example();
    validate_script(&fx.s0).unwrap();
    let input = input_tree(&fx.s0).unwrap();
    assert_eq!(input, extract_view(&fx.ann, &fx.t0), "In(S0) = A(t0)");
    let out = output_tree(&fx.s0).unwrap();
    assert_eq!(
        to_term_with_ids(&out, &fx.alpha),
        "r#0(a#4, d#11(c#13, c#14), a#12, d#6(c#10, c#15))",
        "Out(S0) is Fig. 5"
    );
    assert_eq!(cost(&fx.s0), 8);
}

/// E3 — Figure 6: the inversion graph of d#11(c#13, c#14) and its
/// minimal inverse.
#[test]
fn e3_inversion_graph() {
    let fx = running_example();
    let mut alpha = fx.alpha.clone();
    let mut gen = fx.gen.clone();
    let frag = parse_term_with_ids(&mut alpha, &mut gen, "d#11(c#13, c#14)").unwrap();
    let sizes = min_sizes(&fx.dtd, alpha.len());
    let pkg = InsertletPackage::new();
    let cm = CostModel {
        sizes: &sizes,
        insertlets: &pkg,
    };
    let forest = InversionForest::build(&fx.dtd, &fx.ann, &frag, &cm).unwrap();
    // minimal inverse: d(x, c, y, c) with x, y ∈ {a, b} → 5 nodes, padding 2
    assert_eq!(forest.min_padding(), 2);
    assert_eq!(forest.min_inverse_size(), 5);
    let inv = forest
        .materialize_min(&fx.dtd, &cm, Selector::PreferNop, &mut gen, 1_000)
        .unwrap();
    assert!(fx.dtd.is_valid(&inv));
    assert_eq!(extract_view(&fx.ann, &inv), frag);
    // Fig. 6 shows one of the 4 minimal inverses (d(a, c, b, c)).
    assert_eq!(forest.count_min_inverses(), 4);
}

/// E4 — Figure 7: an optimal side-effect-free propagation of S0 with
/// cost 14, verified end to end.
#[test]
fn e4_fig7_propagation() {
    let fx = running_example();
    let engine = engine_of(&fx.alpha, &fx.dtd, &fx.ann);
    let session = engine.open(&fx.t0).unwrap();
    let prop = session.propagate(&fx.s0).unwrap();
    assert_eq!(prop.cost, 14);
    session.verify(&fx.s0, &prop.script).unwrap();
    // No enumerated optimal propagation has a different cost, and all are
    // sound.
    let scripts = session.enumerate_optimal(&fx.s0, 16).unwrap();
    assert!(!scripts.is_empty());
    for s in &scripts {
        session.verify(&fx.s0, s).unwrap();
        assert_eq!(cost(s), 14);
    }
}

/// E5 — Figure 8: the propagation graph G_{n6}.
#[test]
fn e5_graph_n6() {
    let fx = running_example();
    let engine = engine_of(&fx.alpha, &fx.dtd, &fx.ann);
    let prop = engine.open(&fx.t0).unwrap().propagate(&fx.s0).unwrap();
    let g = prop.forest.graph(NodeId(6)).unwrap();
    // Graph shape is automaton-representation dependent; the invariants:
    // a start, goals, a best path of cost 2 (keep b9 and c10, insert the
    // inverse of c15 = c plus one hidden sibling).
    assert_eq!(g.best_cost(), Some(2));
    assert!(g.n_vertices() >= 8);
    assert!(g.n_edges() >= 8);
    assert_eq!(prop.forest.cost(NodeId(6)), Some(2));
}

/// E6 — Figure 10: the optimal propagation graph G*_{n0}.
#[test]
fn e6_optimal_graph_n0() {
    let fx = running_example();
    let engine = engine_of(&fx.alpha, &fx.dtd, &fx.ann);
    let prop = engine.open(&fx.t0).unwrap().propagate(&fx.s0).unwrap();
    let g0 = prop.forest.graph(NodeId(0)).unwrap();
    let opt = g0.optimal_subgraph().unwrap();
    assert!(opt.is_acyclic(), "G* is acyclic (paper, Further results)");
    assert_eq!(opt.best_cost(), Some(14));
    assert!(opt.n_edges() < g0.n_edges(), "G* prunes non-optimal edges");
    // The Fig. 10 path (preference of Nop-edges over Ins-edges) is what
    // the default selector walks; its ops in order:
    let path = opt
        .walk(|g, outs| Selector::PreferNop.pick(g, outs))
        .unwrap();
    let kinds: Vec<&str> = path
        .iter()
        .map(|&e| match opt.edge(e).payload {
            xml_view_update::propagate::PropEdge::InsInvisible(_) => "Ins·",
            xml_view_update::propagate::PropEdge::DelInvisible { .. } => "Del·",
            xml_view_update::propagate::PropEdge::NopInvisible { .. } => "Nop·",
            xml_view_update::propagate::PropEdge::InsVisible { .. } => "InsV",
            xml_view_update::propagate::PropEdge::DelVisible { .. } => "DelV",
            xml_view_update::propagate::PropEdge::NopVisible { .. } => "NopV",
        })
        .collect();
    // Fig. 10's selected path: delete the a·b·d group, keep a4 (Nop),
    // keep c5 (Nop invisible), insert d-group and a (visible inserts with
    // one invisible b), keep d6.
    assert_eq!(
        kinds,
        vec!["DelV", "Del·", "DelV", "NopV", "Nop·", "InsV", "InsV", "Ins·", "NopV"]
    );
}

/// The §4 existence example D1: a visible insert has infinitely many
/// propagations, the optimal one adds no padding.
#[test]
fn d1_has_minimal_padding_zero() {
    let fx = paper::d1_infinite_propagations();
    let mut alpha = fx.alpha.clone();
    let mut gen = NodeIdGen::new();
    let source = parse_term_with_ids(&mut alpha, &mut gen, "r#0(a#1)").unwrap();
    let update = parse_script(&mut alpha, "nop:r#0(nop:a#1, ins:a#2)").unwrap();
    let engine = engine_of(&fx.alpha, &fx.dtd, &fx.ann);
    let session = engine.open(&source).unwrap();
    let prop = session.propagate(&update).unwrap();
    assert_eq!(prop.cost, 1);
    session.verify(&update, &prop.script).unwrap();
}
