//! Completeness of the graph constructions (the "vice versa" direction of
//! Theorems 1–2), checked by brute force on small instances.
//!
//! The soundness direction — everything the graphs produce is correct —
//! is covered everywhere else. Here we independently enumerate **all**
//! trees satisfying the DTD up to a size bound, select those whose view
//! matches the target, and compare against the graph-based enumeration:
//! the two sets of isomorphism classes must coincide. A missing class
//! would falsify the capture theorems.

use std::collections::BTreeSet;
use xml_view_update::prelude::*;

/// A plain label tree for brute-force enumeration (no identifiers).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
struct BT {
    label: usize,
    children: Vec<BT>,
}

impl BT {
    fn size(&self) -> usize {
        1 + self.children.iter().map(BT::size).sum::<usize>()
    }

    /// Canonical term string, used as the isomorphism-class key.
    fn key(&self, alpha: &Alphabet) -> String {
        let name = alpha.name(Sym::try_from_index(self.label).expect("label index fits a symbol"));
        if self.children.is_empty() {
            name.to_owned()
        } else {
            let kids: Vec<String> = self.children.iter().map(|c| c.key(alpha)).collect();
            format!("{name}({})", kids.join(","))
        }
    }

    /// The view under `ann` (labels only).
    fn view(&self, ann: &Annotation) -> BT {
        let parent = Sym::try_from_index(self.label).expect("label index fits a symbol");
        BT {
            label: self.label,
            children: self
                .children
                .iter()
                .filter(|c| {
                    ann.is_visible(
                        parent,
                        Sym::try_from_index(c.label).expect("label index fits a symbol"),
                    )
                })
                .map(|c| c.view(ann))
                .collect(),
        }
    }

    fn of_doc(t: &DocTree, n: NodeId) -> BT {
        BT {
            label: t.label(n).index(),
            children: t.children(n).iter().map(|&c| BT::of_doc(t, c)).collect(),
        }
    }
}

/// Enumerates all child words over `alphabet_len` symbols of length ≤
/// `max_len` accepted by the content model of `label`.
fn words(dtd: &Dtd, alphabet_len: usize, label: Sym, max_len: usize) -> Vec<Vec<usize>> {
    let model = dtd.content_model(label);
    let mut out = Vec::new();
    let mut stack: Vec<Vec<usize>> = vec![vec![]];
    while let Some(w) = stack.pop() {
        let syms: Vec<Sym> = w
            .iter()
            .map(|&i| Sym::try_from_index(i).expect("word symbol fits a symbol"))
            .collect();
        if model.accepts(&syms) {
            out.push(w.clone());
        }
        if w.len() < max_len {
            for i in 0..alphabet_len {
                let mut next = w.clone();
                next.push(i);
                stack.push(next);
            }
        }
    }
    out
}

/// All trees rooted at `label` satisfying `dtd` with at most `budget`
/// nodes (and at most `max_arity` children per node).
fn all_trees(
    dtd: &Dtd,
    alphabet_len: usize,
    label: usize,
    budget: usize,
    max_arity: usize,
) -> Vec<BT> {
    if budget == 0 {
        return vec![];
    }
    let mut out = Vec::new();
    for w in words(
        dtd,
        alphabet_len,
        Sym::try_from_index(label).expect("label index fits a symbol"),
        max_arity,
    ) {
        // distribute the remaining budget over the children
        let child_sets: Vec<Vec<BT>> = w
            .iter()
            .map(|&c| all_trees(dtd, alphabet_len, c, budget - 1, max_arity))
            .collect();
        // cartesian product with total-size filter
        let mut combos: Vec<Vec<BT>> = vec![vec![]];
        for set in &child_sets {
            let mut next = Vec::new();
            for combo in &combos {
                let used: usize = combo.iter().map(BT::size).sum();
                for t in set {
                    if 1 + used + t.size() <= budget {
                        let mut c = combo.clone();
                        c.push(t.clone());
                        next.push(c);
                    }
                }
            }
            combos = next;
        }
        for children in combos {
            if children.len() == w.len() {
                out.push(BT { label, children });
            }
        }
    }
    out
}

/// Theorem 1 completeness on the paper's Figure 6 instance: brute-force
/// inverses of `d(c, c)` up to 7 nodes vs graph enumeration.
#[test]
fn inversion_graphs_capture_all_inverses_fig6() {
    let fx = xml_view_update::workload::paper::running_example();
    let mut alpha = fx.alpha.clone();
    let mut gen = fx.gen.clone();
    let frag = parse_term_with_ids(&mut alpha, &mut gen, "d#11(c#13, c#14)").unwrap();
    let target_view = BT::of_doc(&frag, frag.root());
    let d = alpha.get("d").unwrap();

    // brute force: every valid d-rooted tree with ≤ 7 nodes whose view is
    // d(c, c)
    let mut brute: BTreeSet<String> = BTreeSet::new();
    for t in all_trees(&fx.dtd, alpha.len(), d.index(), 7, 6) {
        if t.view(&fx.ann) == target_view {
            brute.insert(t.key(&alpha));
        }
    }
    // ((a+b)·c)* around two visible c's: exactly one hidden (a|b) before
    // each c, plus optional extra ((a+b)c) groups are *not* allowed (they
    // would add visible c's). So: 4 classes at 5 nodes... plus nothing
    // else fits in 7 nodes without changing the view.
    assert_eq!(brute.len(), 4, "brute-force classes: {brute:?}");

    // graph-based enumeration, same bound — the engine supplies the
    // precompiled cost model
    let engine = Engine::builder()
        .alphabet(alpha.clone())
        .dtd(fx.dtd.clone())
        .annotation(fx.ann.clone())
        .build()
        .unwrap();
    let cm = engine.cost_model();
    let forest = InversionForest::build(&fx.dtd, &fx.ann, &frag, &cm).unwrap();
    let mut gen2 = NodeIdGen::starting_at(1 << 20);
    let enumerated = forest
        .enumerate_inverses(&fx.dtd, &cm, &mut gen2, 1_000, 10_000, 20)
        .unwrap();
    let mut graph_classes: BTreeSet<String> = BTreeSet::new();
    for inv in &enumerated {
        if inv.size() <= 7 {
            graph_classes.insert(BT::of_doc(inv, inv.root()).key(&alpha));
        }
    }
    assert_eq!(
        brute, graph_classes,
        "graph enumeration must capture exactly the brute-force inverse classes"
    );
}

/// Same completeness check on a pumpable schema where inverses of several
/// sizes exist.
#[test]
fn inversion_graphs_capture_all_inverses_pumpable() {
    let mut alpha = Alphabet::new();
    let dtd = parse_dtd(&mut alpha, "r -> (a.b*)*").unwrap();
    let ann = parse_annotation(&mut alpha, "hide r b").unwrap();
    let mut gen = NodeIdGen::new();
    let frag = parse_term_with_ids(&mut alpha, &mut gen, "r#0(a#1, a#2)").unwrap();
    let target_view = BT::of_doc(&frag, frag.root());
    let r = alpha.get("r").unwrap();

    let bound = 6;
    let mut brute: BTreeSet<String> = BTreeSet::new();
    for t in all_trees(&dtd, alpha.len(), r.index(), bound, 6) {
        if t.view(&ann) == target_view {
            brute.insert(t.key(&alpha));
        }
    }
    // r(a,a), r(a,b,a), r(a,a,b), r(a,b,b,a), r(a,b,a,b), r(a,a,b,b),
    // and the 3-b variants at 6 nodes: r(a,b,b,b,a), r(a,b,b,a,b),
    // r(a,b,a,b,b), r(a,a,b,b,b) → 10 classes.
    assert_eq!(brute.len(), 10, "brute-force classes: {brute:?}");

    let engine = Engine::builder()
        .alphabet(alpha.clone())
        .dtd(dtd.clone())
        .annotation(ann.clone())
        .build()
        .unwrap();
    let cm = engine.cost_model();
    let forest = InversionForest::build(&dtd, &ann, &frag, &cm).unwrap();
    let mut gen2 = NodeIdGen::starting_at(1 << 20);
    let enumerated = forest
        .enumerate_inverses(&dtd, &cm, &mut gen2, 1_000, 100_000, 16)
        .unwrap();
    let mut graph_classes: BTreeSet<String> = BTreeSet::new();
    for inv in &enumerated {
        if inv.size() <= bound {
            graph_classes.insert(BT::of_doc(inv, inv.root()).key(&alpha));
        }
    }
    assert_eq!(brute, graph_classes);
}

/// Theorem 2 completeness: the *minimal* brute-force inverses are exactly
/// the classes counted by the optimal inversion graphs.
#[test]
fn optimal_graphs_capture_exactly_the_minimal_inverses() {
    let fx = xml_view_update::workload::paper::running_example();
    let mut alpha = fx.alpha.clone();
    let mut gen = fx.gen.clone();
    let frag = parse_term_with_ids(&mut alpha, &mut gen, "d#11(c#13, c#14)").unwrap();
    let target_view = BT::of_doc(&frag, frag.root());
    let d = alpha.get("d").unwrap();

    let mut best: Option<usize> = None;
    let mut minimal: BTreeSet<String> = BTreeSet::new();
    for t in all_trees(&fx.dtd, alpha.len(), d.index(), 8, 6) {
        if t.view(&fx.ann) == target_view {
            let s = t.size();
            match best {
                Some(b) if s > b => {}
                Some(b) if s == b => {
                    minimal.insert(t.key(&alpha));
                }
                _ => {
                    best = Some(s);
                    minimal.clear();
                    minimal.insert(t.key(&alpha));
                }
            }
        }
    }

    let engine = Engine::builder()
        .alphabet(alpha.clone())
        .dtd(fx.dtd.clone())
        .annotation(fx.ann.clone())
        .build()
        .unwrap();
    let forest = InversionForest::build(&fx.dtd, &fx.ann, &frag, &engine.cost_model()).unwrap();
    assert_eq!(best.unwrap() as u64, forest.min_inverse_size());
    assert_eq!(minimal.len() as u128, forest.count_min_inverses());
}
