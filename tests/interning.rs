//! Hash-consing invariants of the subtree [`Interner`] and their
//! session-level consequences.
//!
//! The shared memo tier keys every fleet-wide memo by [`InternId`], so
//! the whole design rests on two properties: ids coalesce **exactly**
//! the structurally equal subtrees (identifiers ignored), and the ids a
//! session maintains across clone / detach / attach / commit agree with
//! a from-scratch interning of the same document. A wrong id here would
//! silently serve one document's memos to a structurally different one.

use proptest::prelude::*;
use xml_view_update::prelude::*;
use xml_view_update::workload::{
    generate_annotation, generate_doc, generate_dtd, generate_update, DocGenConfig, DtdGenConfig,
    UpdateGenConfig,
};

/// The identifier-free shape of the subtree at `n` — the ground truth
/// that [`InternId`] equality must mirror.
fn shape(doc: &DocTree, alpha: &Alphabet, n: NodeId) -> String {
    let mut s = alpha.name(doc.label(n)).to_string();
    if !doc.children(n).is_empty() {
        s.push('(');
        for (i, &c) in doc.children(n).iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&shape(doc, alpha, c));
        }
        s.push(')');
    }
    s
}

fn random_doc(seed: u64) -> (Alphabet, Dtd, DocTree) {
    let mut alpha = Alphabet::new();
    let dtd = generate_dtd(&mut alpha, &DtdGenConfig::default(), seed);
    let root = alpha.get("l0").unwrap();
    let mut gen = NodeIdGen::new();
    let doc = generate_doc(
        &dtd,
        alpha.len(),
        root,
        &DocGenConfig {
            max_nodes: 120,
            max_depth: 5,
            max_children: 6,
            stop_bias: 0.05,
        },
        seed ^ 0x5EED,
        &mut gen,
    );
    (alpha, dtd, doc)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Coalescing is exact on random documents: two nodes share an
    /// [`InternId`] iff their identifier-free shapes are equal — in both
    /// directions, across every node pair of the document.
    #[test]
    fn intern_ids_coalesce_exactly_the_equal_shapes(seed in 0u64..2000) {
        let (alpha, _dtd, doc) = random_doc(seed);
        let interner = Interner::new();
        let ids = interner.intern_doc(&doc);
        let nodes: Vec<NodeId> = doc.postorder().collect();
        for &a in &nodes {
            for &b in &nodes {
                let same_id = ids[doc.slot(a).unwrap()] == ids[doc.slot(b).unwrap()];
                let same_shape = shape(&doc, &alpha, a) == shape(&doc, &alpha, b);
                prop_assert_eq!(
                    same_id, same_shape,
                    "seed {}: nodes {:?}/{:?} — id equality must mirror shape equality",
                    seed, a, b
                );
            }
        }
        // and re-interning the same document is a pure function
        let again = interner.intern_doc(&doc);
        for &n in &nodes {
            prop_assert_eq!(ids[doc.slot(n).unwrap()], again[doc.slot(n).unwrap()]);
        }
    }

    /// Stability across clone and a detach/attach round-trip: node ids
    /// and arena slots may be reshuffled by `detach_subtree`'s
    /// swap-remove, but every node's structural id must come back
    /// unchanged once the subtree is grafted back where it was.
    #[test]
    fn intern_ids_survive_clone_and_detach_attach(seed in 0u64..2000) {
        let (_alpha, _dtd, doc) = random_doc(seed);
        let interner = Interner::new();
        let before = interner.intern_doc(&doc);

        // clone: same shapes, same ids, nothing new interned
        let len_before = interner.len();
        let cloned = doc.clone();
        let clone_ids = interner.intern_doc(&cloned);
        prop_assert_eq!(interner.len(), len_before, "a clone interns no new shape");
        for n in doc.postorder() {
            prop_assert_eq!(
                before[doc.slot(n).unwrap()],
                clone_ids[cloned.slot(n).unwrap()],
            );
        }

        // detach a non-root subtree and graft it straight back
        let victims: Vec<NodeId> = doc.postorder().filter(|&n| n != doc.root()).collect();
        if let Some(&victim) = victims.get(seed as usize % victims.len().max(1)) {
            let mut working = doc.clone();
            let parent = working
                .postorder()
                .find(|&p| working.children(p).contains(&victim))
                .unwrap();
            let position = working
                .children(parent)
                .iter()
                .position(|&c| c == victim)
                .unwrap();
            let sub = working.detach_subtree(victim).unwrap();
            working.attach_subtree(parent, position, sub).unwrap();
            let after = interner.intern_doc(&working);
            prop_assert_eq!(interner.len(), len_before, "round-trip interns no new shape");
            for n in doc.postorder() {
                prop_assert_eq!(
                    before[doc.slot(n).unwrap()],
                    after[working.slot(n).unwrap()],
                    "seed {}: node {:?} changed structural id over detach/attach",
                    seed, n
                );
            }
        }
    }

    /// Commit-time id maintenance, observed end to end: a session of a
    /// sharing engine propagates and commits random updates; at every
    /// step it must stay byte-identical to a cache-disabled session, and
    /// after the stream a fresh session over the committed document is
    /// served from the shared tier. A single wrong re-interned id after
    /// commit would leak one structure's memos to another and break the
    /// byte-identity.
    #[test]
    fn commit_reinterning_keeps_sessions_byte_identical(seed in 0u64..600) {
        let mut alpha = Alphabet::new();
        let dtd = generate_dtd(&mut alpha, &DtdGenConfig::default(), seed);
        let ann = generate_annotation(&alpha, 0.3, seed ^ 41, &[]);
        let root = alpha.get("l0").unwrap();
        let mut gen = NodeIdGen::new();
        let doc = generate_doc(
            &dtd,
            alpha.len(),
            root,
            &DocGenConfig { max_depth: 4, max_children: 5, ..DocGenConfig::default() },
            seed ^ 42,
            &mut gen,
        );
        let shared = Engine::builder()
            .alphabet(alpha.clone())
            .dtd(dtd.clone())
            .annotation(ann.clone())
            .build()
            .unwrap();
        let disabled = Engine::builder()
            .alphabet(alpha.clone())
            .dtd(dtd.clone())
            .annotation(ann.clone())
            .prop_cache(false)
            .build()
            .unwrap();
        let mut s = shared.open(&doc).unwrap();
        let mut d = disabled.open(&doc).unwrap();
        for step in 0..3u64 {
            let mut g = s.id_gen();
            let update = generate_update(
                &dtd, &ann, alpha.len(), s.document(),
                &UpdateGenConfig { ops: 2, ..UpdateGenConfig::default() },
                seed ^ (900 + step),
                &mut g,
            );
            let ps = s.propagate(&update).unwrap();
            let pd = d.propagate(&update).unwrap();
            prop_assert_eq!(ps.cost, pd.cost, "seed {} step {}", seed, step);
            prop_assert_eq!(
                script_to_term(&ps.script, &alpha),
                script_to_term(&pd.script, &alpha),
                "seed {} step {}: scripts diverge", seed, step
            );
            s.commit(&ps).unwrap();
            d.commit(&pd).unwrap();
            prop_assert_eq!(s.document(), d.document(), "seed {} step {}", seed, step);
        }
        // The sharp check on commit-time id maintenance: the long-lived
        // session publishes memos for the *final* document under its
        // re-interned (restored + refreshed) ids; a fresh session
        // re-interns the same document from scratch and replays the same
        // identity update. Every one of its shared lookups must hit — a
        // single re-interned id that disagrees with from-scratch
        // interning would surface as a shared miss.
        s.propagate(&nop_script(s.view())).unwrap();
        let fresh = shared.open(s.document()).unwrap();
        fresh.propagate(&nop_script(fresh.view())).unwrap();
        let st = fresh.cache_stats();
        prop_assert!(
            st.shared_hits > 0,
            "seed {}: fresh session found none of the committed session's memos: {:?}",
            seed, st
        );
        prop_assert_eq!(
            st.shared_misses, 0,
            "seed {}: post-commit re-interned ids disagree with from-scratch interning: {:?}",
            seed, st
        );
    }
}
