//! Property-based tests for the flat arena snapshot format.
//!
//! Three contracts, each over arbitrary trees:
//!
//! * encode → decode is the identity, down to node identifiers and a
//!   clean [`Tree::validate`] — the decoded arena really is the arena;
//! * the flat snapshot and the legacy JSON wire format describe the
//!   same tree (either encoding decodes to the same `DocTree`);
//! * snapshots survive life: trees mutated by `detach`/`attach`
//!   surgery (which scrambles slab order and leaves sparse slot
//!   entries) and documents committed through a [`Session`] propagation
//!   cycle still round-trip identifier-exactly.

use proptest::prelude::*;
use xml_view_update::prelude::*;
use xml_view_update::tree::{from_legacy_json, to_legacy_json, DocTree};
use xml_view_update::workload::{
    generate_annotation, generate_doc, generate_dtd, generate_update, DocGenConfig, DtdGenConfig,
    UpdateGenConfig,
};

/// Strategy: a random identifier-annotated term over labels {a..e}.
fn arb_term() -> impl Strategy<Value = String> {
    let leaf = prop::sample::select(vec!["a", "b", "c", "d", "e"]).prop_map(str::to_owned);
    leaf.prop_recursive(4, 40, 5, |inner| {
        (
            prop::sample::select(vec!["a", "b", "c", "d", "e"]),
            prop::collection::vec(inner, 1..4),
        )
            .prop_map(|(l, kids)| format!("{l}({})", kids.join(", ")))
    })
}

fn parse(src: &str) -> (Alphabet, DocTree) {
    let mut alpha = Alphabet::new();
    let mut gen = NodeIdGen::new();
    let t = parse_term(&mut alpha, &mut gen, src).unwrap();
    (alpha, t)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Snapshot encode → decode is identifier-exact and validates.
    #[test]
    fn snapshot_round_trip_is_exact(src in arb_term()) {
        let (alpha, t) = parse(&src);
        let bytes = t.to_snapshot_bytes(&alpha).unwrap();
        // decoding into the same alphabet reproduces the tree exactly
        let mut same = alpha.clone();
        let back = DocTree::from_snapshot_bytes(&bytes, &mut same).unwrap();
        prop_assert_eq!(&back, &t);
        back.validate().unwrap();
        prop_assert_eq!(same.len(), alpha.len());
        // encoding is deterministic
        prop_assert_eq!(back.to_snapshot_bytes(&same).unwrap(), bytes);
        // decoding into a fresh alphabet preserves label *names*
        let mut fresh = Alphabet::new();
        let renamed = DocTree::from_snapshot_bytes(&bytes, &mut fresh).unwrap();
        renamed.validate().unwrap();
        prop_assert_eq!(to_term_with_ids(&renamed, &fresh), to_term_with_ids(&t, &alpha));
    }

    /// The flat snapshot and the legacy JSON format agree: both
    /// encodings of a tree decode back to the same document.
    #[test]
    fn snapshot_agrees_with_legacy_json(src in arb_term()) {
        let (alpha, t) = parse(&src);
        let json = to_legacy_json(&t);
        let bytes = t.to_snapshot_bytes(&alpha).unwrap();
        let from_json = from_legacy_json(&json).unwrap();
        let mut scratch = alpha.clone();
        let from_snap = DocTree::from_snapshot_bytes(&bytes, &mut scratch).unwrap();
        prop_assert_eq!(&from_json, &from_snap);
        // and the round trip through either format re-encodes identically
        prop_assert_eq!(to_legacy_json(&from_snap), json);
        prop_assert_eq!(from_json.to_snapshot_bytes(&alpha).unwrap(), bytes);
    }

    /// Trees rearranged by detach/attach surgery — which permutes slab
    /// order, vacates slots, and populates the sparse index — still
    /// snapshot and decode exactly.
    #[test]
    fn snapshot_survives_detach_attach_surgery(src in arb_term(), moves in 1usize..4) {
        let (alpha, mut t) = parse(&src);
        for round in 0..moves {
            // pick a deterministic non-root victim, if any
            let victim = t.node_ids().find(|&id| id != t.root() &&
                (id.0 as usize + round).is_multiple_of(2));
            let Some(victim) = victim else { break };
            let sub = t.detach_subtree(victim).unwrap();
            let root = t.root();
            let arity = t.node(root).children.len();
            t.attach_subtree(root, arity.min(round), sub).unwrap();
        }
        t.validate().unwrap();
        let bytes = t.to_snapshot_bytes(&alpha).unwrap();
        let mut scratch = alpha.clone();
        let back = DocTree::from_snapshot_bytes(&bytes, &mut scratch).unwrap();
        prop_assert_eq!(&back, &t);
        back.validate().unwrap();
    }

    /// A document committed through session propagation cycles still
    /// snapshots and decodes exactly — the serving write-back path.
    #[test]
    fn snapshot_survives_session_commit_cycles(seed in 0u64..500) {
        let mut alpha = Alphabet::new();
        let dtd = generate_dtd(&mut alpha, &DtdGenConfig::default(), seed);
        let ann = generate_annotation(&alpha, 0.3, seed ^ 41, &[]);
        let root = alpha.get("l0").unwrap();
        let mut gen = NodeIdGen::new();
        let doc = generate_doc(&dtd, alpha.len(), root,
            &DocGenConfig { max_depth: 4, max_children: 5, ..DocGenConfig::default() },
            seed ^ 42, &mut gen);
        let engine = Engine::builder()
            .alphabet(alpha.clone())
            .dtd(dtd.clone())
            .annotation(ann.clone())
            .build()
            .unwrap();
        let mut session = engine.open(&doc).unwrap();
        for step in 0..2u64 {
            let mut g = session.id_gen();
            let update = generate_update(&dtd, &ann, alpha.len(), session.document(),
                &UpdateGenConfig { ops: 2, ..UpdateGenConfig::default() },
                seed ^ (900 + step), &mut g);
            let prop = session.propagate(&update).unwrap();
            session.commit(&prop).unwrap();
            // the committed document round-trips through the snapshot
            let committed = session.document();
            let bytes = committed.to_snapshot_bytes(engine.alphabet()).unwrap();
            let mut scratch = engine.alphabet().clone();
            let back = DocTree::from_snapshot_bytes(&bytes, &mut scratch).unwrap();
            prop_assert_eq!(&back, committed);
            back.validate().unwrap();
        }
    }
}
