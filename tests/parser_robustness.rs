//! Robustness: every parser must reject garbage with typed errors, never
//! panic, on arbitrary input.

use proptest::prelude::*;
use xml_view_update::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Term parser never panics.
    #[test]
    fn term_parser_total(input in "\\PC{0,60}") {
        let mut alpha = Alphabet::new();
        let mut gen = NodeIdGen::new();
        let _ = parse_term(&mut alpha, &mut gen, &input);
        let _ = parse_term_with_ids(&mut alpha, &mut gen, &input);
    }

    /// Regex parser never panics.
    #[test]
    fn regex_parser_total(input in "\\PC{0,60}") {
        let mut alpha = Alphabet::new();
        let _ = xml_view_update::automata::parse_regex(&mut alpha, &input);
    }

    /// DTD rule parser never panics.
    #[test]
    fn dtd_parser_total(input in "\\PC{0,80}") {
        let mut alpha = Alphabet::new();
        let _ = parse_dtd(&mut alpha, &input);
    }

    /// Annotation parser never panics.
    #[test]
    fn annotation_parser_total(input in "\\PC{0,80}") {
        let mut alpha = Alphabet::new();
        let _ = parse_annotation(&mut alpha, &input);
    }

    /// Script parser never panics.
    #[test]
    fn script_parser_total(input in "\\PC{0,80}") {
        let mut alpha = Alphabet::new();
        let _ = parse_script(&mut alpha, &input);
    }

    /// XML reader never panics (including on multi-byte UTF-8).
    #[test]
    fn xml_reader_total(input in "\\PC{0,100}") {
        let mut alpha = Alphabet::new();
        let mut gen = NodeIdGen::new();
        let _ = read_xml(&mut alpha, &mut gen, &input);
    }

    /// XML reader never panics on tag-soup-shaped input.
    #[test]
    fn xml_reader_tag_soup(parts in prop::collection::vec(
        prop::sample::select(vec![
            "<r>", "</r>", "<a/>", "<", ">", "/>", "<!--", "-->", "<?", "?>",
            "x", " ", "\"", "'", "xvu:id=\"3\"", "<a", "</",
        ]), 0..20))
    {
        let input: String = parts.concat();
        let mut alpha = Alphabet::new();
        let mut gen = NodeIdGen::new();
        let _ = read_xml(&mut alpha, &mut gen, &input);
    }

    /// DTD declaration reader never panics.
    #[test]
    fn dtd_decl_reader_total(input in "\\PC{0,100}") {
        let mut alpha = Alphabet::new();
        let _ = read_dtd(&mut alpha, &input);
    }

    /// The CLI front end never panics on malformed argument vectors.
    #[test]
    fn cli_total(args in prop::collection::vec(
        prop::sample::select(vec![
            "validate", "view", "propagate", "invert", "--dtd", "--doc",
            "--ann", "--view", "--update", "--selector", "nop", "bogus",
            "/nonexistent/path",
        ]), 0..6))
    {
        let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let _ = xml_view_update::cli::run(&owned);
    }
}
