//! Robustness: every parser must reject garbage with typed errors, never
//! panic, on arbitrary input.

use proptest::prelude::*;
use xml_view_update::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Term parser never panics.
    #[test]
    fn term_parser_total(input in "\\PC{0,60}") {
        let mut alpha = Alphabet::new();
        let mut gen = NodeIdGen::new();
        let _ = parse_term(&mut alpha, &mut gen, &input);
        let _ = parse_term_with_ids(&mut alpha, &mut gen, &input);
    }

    /// Regex parser never panics.
    #[test]
    fn regex_parser_total(input in "\\PC{0,60}") {
        let mut alpha = Alphabet::new();
        let _ = xml_view_update::automata::parse_regex(&mut alpha, &input);
    }

    /// DTD rule parser never panics.
    #[test]
    fn dtd_parser_total(input in "\\PC{0,80}") {
        let mut alpha = Alphabet::new();
        let _ = parse_dtd(&mut alpha, &input);
    }

    /// Annotation parser never panics.
    #[test]
    fn annotation_parser_total(input in "\\PC{0,80}") {
        let mut alpha = Alphabet::new();
        let _ = parse_annotation(&mut alpha, &input);
    }

    /// Script parser never panics.
    #[test]
    fn script_parser_total(input in "\\PC{0,80}") {
        let mut alpha = Alphabet::new();
        let _ = parse_script(&mut alpha, &input);
    }

    /// XML reader never panics (including on multi-byte UTF-8).
    #[test]
    fn xml_reader_total(input in "\\PC{0,100}") {
        let mut alpha = Alphabet::new();
        let mut gen = NodeIdGen::new();
        let _ = read_xml(&mut alpha, &mut gen, &input);
    }

    /// XML reader never panics on tag-soup-shaped input.
    #[test]
    fn xml_reader_tag_soup(parts in prop::collection::vec(
        prop::sample::select(vec![
            "<r>", "</r>", "<a/>", "<", ">", "/>", "<!--", "-->", "<?", "?>",
            "x", " ", "\"", "'", "xvu:id=\"3\"", "<a", "</",
        ]), 0..20))
    {
        let input: String = parts.concat();
        let mut alpha = Alphabet::new();
        let mut gen = NodeIdGen::new();
        let _ = read_xml(&mut alpha, &mut gen, &input);
    }

    /// DTD declaration reader never panics.
    #[test]
    fn dtd_decl_reader_total(input in "\\PC{0,100}") {
        let mut alpha = Alphabet::new();
        let _ = read_dtd(&mut alpha, &input);
    }

    /// The CLI front end never panics on malformed argument vectors.
    #[test]
    fn cli_total(args in prop::collection::vec(
        prop::sample::select(vec![
            "validate", "view", "propagate", "invert", "--dtd", "--doc",
            "--ann", "--view", "--update", "--selector", "nop", "bogus",
            "/nonexistent/path",
        ]), 0..6))
    {
        let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let _ = xml_view_update::cli::run(&owned);
    }
}

/// Deterministic error-path coverage: specific malformed inputs must map
/// to specific typed errors (the totality properties above only prove
/// "no panic", not "the right diagnosis").
mod error_paths {
    use xml_view_update::dtd::DtdError;
    use xml_view_update::edit::{validate_script, EditError};
    use xml_view_update::prelude::*;

    // ------------------------------------------------- DTD rule parser

    #[test]
    fn dtd_rule_without_arrow_is_a_parse_error_with_line() {
        let mut alpha = Alphabet::new();
        let err = parse_dtd(&mut alpha, "r -> (a)*\nd (b)*").unwrap_err();
        assert!(matches!(err, DtdError::Parse { line: 2, .. }), "{err}");
    }

    #[test]
    fn dtd_malformed_label_is_rejected() {
        let mut alpha = Alphabet::new();
        for bad in ["r! -> a", "-> a", "a b -> c"] {
            let err = parse_dtd(&mut alpha, bad).unwrap_err();
            assert!(
                matches!(err, DtdError::Parse { line: 1, .. }),
                "{bad}: {err}"
            );
        }
    }

    #[test]
    fn dtd_malformed_regex_reports_the_offending_line() {
        let mut alpha = Alphabet::new();
        for (src, line) in [("r -> (a", 1), ("r -> a\nd -> b+*", 2), ("r -> a..b", 1)] {
            let err = parse_dtd(&mut alpha, src).unwrap_err();
            match err {
                DtdError::Parse { line: l, .. } => assert_eq!(l, line, "{src}"),
                other => panic!("{src}: expected parse error, got {other}"),
            }
        }
    }

    #[test]
    fn dtd_duplicate_rule_is_its_own_error() {
        let mut alpha = Alphabet::new();
        let err = parse_dtd(&mut alpha, "r -> a\nr -> b").unwrap_err();
        assert_eq!(err, DtdError::DuplicateRule("r".to_owned()));
    }

    // --------------------------------------------- edit-script parser

    #[test]
    fn script_unknown_operation_is_rejected() {
        let mut alpha = Alphabet::new();
        let err = parse_script(&mut alpha, "zap:r#0").unwrap_err();
        assert!(matches!(err, EditError::Parse { .. }), "{err}");
    }

    #[test]
    fn script_unbalanced_parentheses_are_rejected() {
        let mut alpha = Alphabet::new();
        for bad in ["nop:r#0(del:a#1", "nop:r#0)", "nop:r#0(nop:a#1))"] {
            let err = parse_script(&mut alpha, bad).unwrap_err();
            assert!(matches!(err, EditError::Parse { .. }), "{bad}: {err}");
        }
    }

    #[test]
    fn script_missing_pieces_are_rejected() {
        let mut alpha = Alphabet::new();
        for bad in ["nop r#0", "nop:#0", "nop:r#", "nop:r#x", "nop:r#0(,)", ""] {
            assert!(
                parse_script(&mut alpha, bad).is_err(),
                "{bad:?} should not parse"
            );
        }
    }

    #[test]
    fn script_whole_subtree_discipline_is_validated() {
        let mut alpha = Alphabet::new();
        // A Nop child under an Ins parent breaks the paper's
        // whole-subtree insertion discipline.
        let s = parse_script(&mut alpha, "nop:r#0(ins:a#1(nop:b#2))").unwrap();
        let err = validate_script(&s).unwrap_err();
        assert!(matches!(err, EditError::InsClosureViolated(_)), "{err}");
        // Likewise a Nop under a Del.
        let s = parse_script(&mut alpha, "nop:r#0(del:a#1(nop:b#2))").unwrap();
        let err = validate_script(&s).unwrap_err();
        assert!(matches!(err, EditError::DelClosureViolated(_)), "{err}");
    }

    #[test]
    fn term_parser_rejects_unbalanced_and_empty_input() {
        let mut alpha = Alphabet::new();
        let mut gen = NodeIdGen::new();
        for bad in ["r(a", "r)", "", "r(a,)", "(a)", "r(a b)"] {
            assert!(
                parse_term(&mut alpha, &mut gen, bad).is_err(),
                "{bad:?} should not parse"
            );
        }
    }
}
