//! Concurrent serving: the `Send + Sync` engine contract, batch
//! determinism across thread counts, and `SessionPool` isolation.
//!
//! The paper's Theorem 6 artefacts are compiled once into an immutable
//! [`Engine`]; these tests pin down the serving consequences: one
//! `Arc<Engine>` shared by plain OS threads, `propagate_batch` results
//! that are byte-identical whatever the worker count, and per-document
//! commit isolation through the session pool.

use std::sync::Arc;
use xml_view_update::prelude::*;
use xml_view_update::workload::scenario::{admit_patient, hospital, hospital_doc, Hospital};
use xml_view_update::workload::{
    generate_annotation, generate_doc, generate_dtd, generate_update, DocGenConfig, DtdGenConfig,
    UpdateGenConfig,
};

/// The engine (and everything batch workers share or return) crosses
/// threads — checked by the compiler, exercised nowhere else. This is the
/// `Arc<Engine>` sharing contract.
#[test]
fn engine_and_serving_types_are_send_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Engine>();
    assert_send_sync::<EngineBuilder>();
    assert_send_sync::<Propagation>();
    assert_send_sync::<PropagateError>();
    assert_send_sync::<Session<'static>>();
    assert_send_sync::<SessionPool<'static, u64>>();
    assert_send_sync::<SessionPool<'static, String>>();
}

fn paper_engine() -> (Engine, DocTree, Script) {
    let mut alpha = Alphabet::new();
    let mut gen = NodeIdGen::new();
    let dtd = parse_dtd(&mut alpha, "r -> (a.(b+c).d)*\nd -> ((a+b).c)*").unwrap();
    let ann = parse_annotation(&mut alpha, "hide r b\nhide r c\nhide d a\nhide d b").unwrap();
    let t0 = parse_term_with_ids(
        &mut alpha,
        &mut gen,
        "r#0(a#1, b#2, d#3(a#7, c#8), a#4, c#5, d#6(b#9, c#10))",
    )
    .unwrap();
    let s0 = parse_script(
        &mut alpha,
        "nop:r#0(del:a#1, del:d#3(del:c#8), nop:a#4, \
         ins:d#11(ins:c#13, ins:c#14), ins:a#12, nop:d#6(nop:c#10, ins:c#15))",
    )
    .unwrap();
    let engine = Engine::builder()
        .alphabet(alpha)
        .dtd(dtd)
        .annotation(ann)
        .build()
        .unwrap();
    (engine, t0, s0)
}

/// One `Arc<Engine>` serves detached (non-scoped) threads — the `'static`
/// sharing shape a real server uses.
#[test]
fn arc_engine_serves_spawned_threads() {
    let (engine, t0, s0) = paper_engine();
    let engine = Arc::new(engine);
    let workers: Vec<_> = (0..4)
        .map(|_| {
            let engine = Arc::clone(&engine);
            let (t, s) = (t0.clone(), s0.clone());
            std::thread::spawn(move || {
                let session = engine.open(&t).unwrap();
                let prop = session.propagate(&s).unwrap();
                session.verify(&s, &prop.script).unwrap();
                prop.cost
            })
        })
        .collect();
    for w in workers {
        assert_eq!(w.join().unwrap(), 14); // the paper's Fig. 7 optimum
    }
}

/// A randomized engine + a batch of `(document, update)` requests over it,
/// deterministic in `seed`. Several documents of the same schema, one
/// generated update each.
fn random_requests(labels: usize, docs: usize, seed: u64) -> (Engine, Vec<(DocTree, Script)>) {
    let mut alpha = Alphabet::new();
    let dtd = generate_dtd(
        &mut alpha,
        &DtdGenConfig {
            labels,
            ..DtdGenConfig::default()
        },
        seed,
    );
    let ann = generate_annotation(&alpha, 0.3, seed ^ 101, &[]);
    let root = alpha.get("l0").unwrap();
    let mut gen = NodeIdGen::new();
    let mut requests = Vec::new();
    for i in 0..docs as u64 {
        let doc = generate_doc(
            &dtd,
            alpha.len(),
            root,
            &DocGenConfig {
                max_nodes: 300,
                max_depth: 6,
                max_children: 8,
                stop_bias: 0.05,
            },
            seed ^ (202 + i),
            &mut gen,
        );
        let update = generate_update(
            &dtd,
            &ann,
            alpha.len(),
            &doc,
            &UpdateGenConfig {
                ops: 3,
                ..UpdateGenConfig::default()
            },
            seed ^ (303 + i),
            &mut gen,
        );
        requests.push((doc, update));
    }
    let engine = Engine::builder()
        .alphabet(alpha)
        .dtd(dtd)
        .annotation(ann)
        .build()
        .unwrap();
    (engine, requests)
}

/// The determinism contract: `propagate_batch` across 1 vs N worker
/// threads yields byte-identical propagations — same cost, same script
/// tree (identifier-sensitive equality) — on the randomized workload
/// generators.
#[test]
fn batch_results_are_thread_count_invariant() {
    for seed in [1234u64, 77, 9001] {
        let (engine, requests) = random_requests(32, 12, seed);
        let baseline = engine.propagate_batch(&requests, 1);
        assert!(
            baseline.iter().filter(|r| r.is_ok()).count() >= requests.len() / 2,
            "seed {seed}: workload generator produced mostly failing requests"
        );
        for jobs in [2usize, 4, 8] {
            let parallel = engine.propagate_batch(&requests, jobs);
            assert_eq!(parallel.len(), baseline.len());
            for (i, (p, b)) in parallel.iter().zip(&baseline).enumerate() {
                match (p, b) {
                    (Ok(p), Ok(b)) => {
                        assert_eq!(p.cost, b.cost, "seed {seed} request {i} jobs {jobs}");
                        assert_eq!(
                            p.script, b.script,
                            "seed {seed} request {i} jobs {jobs}: scripts diverge"
                        );
                    }
                    (Err(p), Err(b)) => {
                        assert_eq!(p, b, "seed {seed} request {i} jobs {jobs}: errors diverge")
                    }
                    _ => panic!(
                        "seed {seed} request {i} jobs {jobs}: Ok/Err disagreement with 1-thread run"
                    ),
                }
            }
        }
    }
}

/// The shared memo tier is a pure cache: for the same randomized batch,
/// engines with the shared tier on (both backends), private-only
/// caching, and caching fully disabled return byte-identical
/// propagations at every worker count. The shared-tier engines are
/// exercised twice so the second pass reads memos the first pass
/// published across documents.
#[test]
fn shared_cache_modes_are_batch_invariant() {
    for seed in [1234u64, 77, 9001] {
        let (engine, requests) = random_requests(32, 12, seed);
        // `random_requests` builds the default engine: shared tier on,
        // Sharded backend. Rebuild the other three modes from its parts.
        let rebuild = |b: EngineBuilder| {
            b.alphabet(engine.alphabet().clone())
                .dtd(engine.dtd().clone())
                .annotation(engine.annotation().clone())
                .build()
                .unwrap()
        };
        let snapshot =
            rebuild(Engine::builder().shared_cache_backend(SharedCacheBackend::Snapshot));
        let private = rebuild(Engine::builder().shared_cache(false));
        let uncached = rebuild(Engine::builder().prop_cache(false));
        let baseline = private.propagate_batch(&requests, 1);
        for jobs in [1usize, 2, 4, 8] {
            for (name, eng) in [
                ("sharded", &engine),
                ("snapshot", &snapshot),
                ("uncached", &uncached),
            ] {
                // two passes: the second reads what the first published
                eng.propagate_batch(&requests, jobs);
                let got = eng.propagate_batch(&requests, jobs);
                assert_eq!(got.len(), baseline.len());
                for (i, (g, b)) in got.iter().zip(&baseline).enumerate() {
                    match (g, b) {
                        (Ok(g), Ok(b)) => {
                            assert_eq!(g.cost, b.cost, "seed {seed} {name} req {i} jobs {jobs}");
                            assert_eq!(
                                g.script, b.script,
                                "seed {seed} {name} req {i} jobs {jobs}: scripts diverge"
                            );
                        }
                        (Err(g), Err(b)) => {
                            assert_eq!(g, b, "seed {seed} {name} req {i} jobs {jobs}")
                        }
                        _ => panic!("seed {seed} {name} req {i} jobs {jobs}: Ok/Err disagreement"),
                    }
                }
            }
        }
        // the shared tiers actually participated: structurally repeated
        // subtrees across the 12 documents produce cross-session traffic
        for (name, eng) in [("sharded", &engine), ("snapshot", &snapshot)] {
            let stats = eng.shared_cache_stats();
            assert!(stats.published > 0, "{name}: nothing published: {stats:?}");
            assert!(stats.hits > 0, "{name}: no shared hits: {stats:?}");
        }
        assert_eq!(private.shared_cache_stats(), SharedCacheStats::default());
    }
}

/// Hospital (document-heavy) determinism, and every batch propagation is
/// verifiable against a fresh session of its own document.
#[test]
fn hospital_batch_is_deterministic_and_sound() {
    let Hospital { alpha, dtd, ann } = hospital();
    let h = Hospital {
        alpha: alpha.clone(),
        dtd: dtd.clone(),
        ann: ann.clone(),
    };
    let mut gen = NodeIdGen::new();
    let doc = hospital_doc(&h, 3, 10, &mut gen);
    let requests: Vec<(DocTree, Script)> = (0..8)
        .map(|i| (doc.clone(), admit_patient(&h, &doc, i % 3, &mut gen)))
        .collect();
    let engine = Engine::builder()
        .alphabet(alpha)
        .dtd(dtd)
        .annotation(ann)
        .build()
        .unwrap();
    let baseline = engine.propagate_batch(&requests, 1);
    let parallel = engine.propagate_batch(&requests, 4);
    for (i, ((p, b), (rdoc, rupd))) in parallel.iter().zip(&baseline).zip(&requests).enumerate() {
        let (p, b) = (p.as_ref().unwrap(), b.as_ref().unwrap());
        assert_eq!(p.cost, b.cost, "request {i}");
        assert_eq!(p.script, b.script, "request {i}");
        // soundness: an independent session re-verifies the parallel result
        engine.open(rdoc).unwrap().verify(rupd, &p.script).unwrap();
    }
}

/// Session pool: distinct documents commit fully in parallel; the same
/// document is serialised by its lease, so commits never interleave and
/// the final state equals a sequential run.
#[test]
fn session_pool_isolates_commits_per_document() {
    let Hospital { alpha, dtd, ann } = hospital();
    let h = Hospital {
        alpha: alpha.clone(),
        dtd: dtd.clone(),
        ann: ann.clone(),
    };
    let mut gen = NodeIdGen::new();
    let docs: Vec<DocTree> = (0..4).map(|_| hospital_doc(&h, 2, 6, &mut gen)).collect();
    let engine = Engine::builder()
        .alphabet(alpha)
        .dtd(dtd)
        .annotation(ann)
        .build()
        .unwrap();
    let pool: SessionPool<'_, usize> = SessionPool::new(&engine);
    let rounds = 3;
    std::thread::scope(|scope| {
        for worker in 0..8usize {
            let (pool, h, docs) = (&pool, &h, &docs);
            scope.spawn(move || {
                for round in 0..rounds {
                    // workers collide on document keys on purpose
                    let key = (worker + round) % docs.len();
                    let mut lease = pool.checkout(key, &docs[key]).unwrap();
                    let mut g = lease.id_gen();
                    let update = admit_patient(h, lease.document(), key % 2, &mut g);
                    lease.apply(&update).unwrap();
                }
            });
        }
    });
    // every admission committed exactly once, 8 workers × 3 rounds total
    let total: u64 = (0..docs.len())
        .map(|key| pool.checkout(key, &docs[key]).unwrap().commits())
        .sum();
    assert_eq!(total, 8 * rounds as u64);
    // and each document is still schema-valid with a consistent view
    for (key, doc) in docs.iter().enumerate() {
        let lease = pool.checkout(key, doc).unwrap();
        assert!(engine.dtd().is_valid(lease.document()));
        assert_eq!(
            lease.view(),
            &extract_view(engine.annotation(), lease.document())
        );
    }
}
