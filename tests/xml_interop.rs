//! Integration: loading schema + document from XML syntax, propagating
//! through a compiled [`Engine`], and writing XML back.

use xml_view_update::prelude::*;

const DTD_SRC: &str = "<!ELEMENT r (a, (b | c), d)*>\n<!ELEMENT d ((a | b), c)*>";

const DOC_SRC: &str = r#"<r xvu:id="0">
  <a xvu:id="1"/><b xvu:id="2"/>
  <d xvu:id="3"><a xvu:id="7"/><c xvu:id="8"/></d>
  <a xvu:id="4"/><c xvu:id="5"/>
  <d xvu:id="6"><b xvu:id="9"/><c xvu:id="10"/></d>
</r>"#;

#[test]
fn full_xml_pipeline_matches_term_pipeline() {
    // Build the running example from XML/DTD syntax…
    let mut alpha = Alphabet::new();
    let mut gen = NodeIdGen::new();
    let dtd = read_dtd(&mut alpha, DTD_SRC).unwrap();
    let source = read_xml(&mut alpha, &mut gen, DOC_SRC).unwrap();

    // …it is the same document as the term fixture.
    let fx = xml_view_update::workload::paper::running_example();
    assert_eq!(source, fx.t0);

    // Propagate S0 through a session and compare to the term pipeline.
    let ann = parse_annotation(&mut alpha, "hide r b\nhide r c\nhide d a\nhide d b").unwrap();
    let s0 = parse_script(
        &mut alpha,
        "nop:r#0(del:a#1, del:d#3(del:c#8), nop:a#4, \
         ins:d#11(ins:c#13, ins:c#14), ins:a#12, nop:d#6(nop:c#10, ins:c#15))",
    )
    .unwrap();
    let engine = Engine::builder()
        .alphabet(alpha)
        .dtd(dtd)
        .annotation(ann)
        .build()
        .unwrap();
    // `open` validates the XML-loaded document against the XML-loaded DTD.
    let mut session = engine.open(&source).unwrap();
    let prop = session.propagate(&s0).unwrap();
    assert_eq!(prop.cost, 14);
    session.commit(&prop).unwrap();

    // Write the new source to XML with identifiers and read it back.
    let new_source = session.document();
    let xml = write_xml(
        new_source,
        engine.alphabet(),
        &WriteOptions {
            pretty: true,
            with_ids: true,
        },
    );
    let mut alpha2 = engine.alphabet().clone();
    let mut gen2 = NodeIdGen::new();
    let back = read_xml(&mut alpha2, &mut gen2, &xml).unwrap();
    assert_eq!(&back, new_source);
    engine.dtd().validate(&back).unwrap();
}

#[test]
fn dtd_syntax_and_rule_syntax_define_equal_languages() {
    use xml_view_update::automata::Dfa;
    let mut a1 = Alphabet::new();
    let from_xml = read_dtd(&mut a1, DTD_SRC).unwrap();
    let from_rules = parse_dtd(&mut a1, "r -> (a.(b+c).d)*\nd -> ((a+b).c)*").unwrap();
    for label in ["r", "d"] {
        let s = a1.get(label).unwrap();
        let d1 = Dfa::determinize(from_xml.content_model(s), a1.len());
        let d2 = Dfa::determinize(from_rules.content_model(s), a1.len());
        assert!(d1.equivalent(&d2), "content models differ for {label}");
    }
}
