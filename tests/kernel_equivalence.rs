//! Observational equivalence of the CSR kernel and scratch pooling.
//!
//! The PR 10 kernel rewrite changed *how* shortest-path queries run —
//! CSR-packed adjacency, memoised reverse CSR, pooled Dijkstra scratch —
//! but must change nothing observable. Two angles:
//!
//! * **kernel vs recursive spec**: on every per-node propagation graph a
//!   real forest produces over the enumerated grammar space, the CSR
//!   Dijkstra (fresh and pooled scratch alike) must agree with a
//!   first-principles recursive Bellman–Ford spec — `dist(v, k)`, the
//!   cheapest start→v cost using at most `k` edges, defined by the
//!   textbook recurrence and memoised;
//! * **scratch hygiene**: one `PropScratch` serving propagations of
//!   *different documents* back to back (the `propagate_batch` inline
//!   path) must yield fingerprints byte-identical to fresh-scratch
//!   one-shot runs — pooled working memory may never leak state across
//!   requests.

use proptest::prelude::*;
use xml_view_update::prelude::*;
use xml_view_update::propagate::PropGraph;
use xml_view_update::workload::enumo::{enumerate_recipes, instance_from_recipe, EnumBudget};
use xml_view_update::workload::scenario::{hospital, hospital_doc, Hospital};
use xml_view_update::workload::{ChurnConfig, ChurnStream};

/// Everything observable about a propagation: cost, the exact script
/// (identifier-sensitive term form), and the optimal count.
fn fingerprint(p: &Propagation, alpha: &Alphabet) -> (u64, String, Option<u128>) {
    (
        p.cost,
        script_to_term(&p.script, alpha),
        count_optimal_propagations(&p.forest),
    )
}

/// Recursive Bellman–Ford spec: `dist(v, k)` = cheapest start→v cost
/// using at most `k` edges, via the textbook recurrence
/// `dist(v, k) = min(dist(v, k-1), min over edges (u,v,w) of
/// dist(u, k-1) + w)`, memoised on `(v, k)`. With non-negative weights a
/// cheapest path is simple, so `k = |V|` suffices; the recursion never
/// touches CSR rows, scratch buffers, or the Dijkstra heap.
fn spec_best_cost(g: &PropGraph) -> Option<u64> {
    let n = g.n_vertices();
    let mut incoming: Vec<Vec<(usize, u64)>> = vec![Vec::new(); n];
    for (_, e) in g.edges() {
        incoming[e.to as usize].push((e.from as usize, e.weight));
    }
    fn dist(
        v: usize,
        k: usize,
        start: usize,
        incoming: &[Vec<(usize, u64)>],
        memo: &mut [Vec<Option<u64>>],
    ) -> u64 {
        if let Some(d) = memo[v][k] {
            return d;
        }
        let mut best = if v == start { 0 } else { u64::MAX };
        if k > 0 {
            best = best.min(dist(v, k - 1, start, incoming, memo));
            for &(u, w) in &incoming[v] {
                let du = dist(u, k - 1, start, incoming, memo);
                if du != u64::MAX {
                    best = best.min(du.saturating_add(w));
                }
            }
        }
        memo[v][k] = Some(best);
        best
    }
    let mut memo = vec![vec![None; n + 1]; n];
    g.goals()
        .map(|goal| dist(goal as usize, n, g.start() as usize, &incoming, &mut memo))
        .min()
        .filter(|&c| c != u64::MAX)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Over enumerated grammar-space instances: every harvested
    /// propagation graph answers identically through the recursive spec,
    /// the fresh-scratch CSR query, and a single pooled scratch reused
    /// across all graphs of the forest — and the full pipeline's
    /// session (pooled) fingerprint matches the one-shot (fresh) run.
    #[test]
    fn csr_kernel_matches_recursive_spec(seed in 0u64..10_000) {
        let recipes = enumerate_recipes(&EnumBudget::default());
        let inst = instance_from_recipe(&recipes[(seed as usize) % recipes.len()]).unwrap();

        let i = Instance::new(&inst.dtd, &inst.ann, &inst.doc, &inst.update, inst.alpha.len())
            .unwrap();
        let sizes = min_sizes(&inst.dtd, inst.alpha.len());
        let pkg = InsertletPackage::new();
        let cm = CostModel { sizes: &sizes, insertlets: &pkg };
        let forest = PropagationForest::build(&i, &cm).unwrap();

        // One pooled scratch across every graph of the forest: reuse on
        // graphs of wildly different sizes must not bend any answer.
        let mut pooled = GraphScratch::default();
        for (n, g) in forest.graphs() {
            let spec = spec_best_cost(g);
            prop_assert_eq!(g.best_cost(), spec, "fresh scratch, node {:?} ({})", n, inst.name);
            prop_assert_eq!(
                g.best_cost_with(&mut pooled), spec,
                "pooled scratch, node {:?} ({})", n, inst.name
            );
            // The optimal subgraph preserves the spec cost too.
            if spec.is_some() {
                let opt = g.optimal_subgraph_with(&mut pooled).expect("reachable goal");
                prop_assert_eq!(
                    opt.best_cost_with(&mut pooled), spec,
                    "optimal subgraph, node {:?} ({})", n, inst.name
                );
            }
        }

        // End to end: warm session (pooled Session scratch) ≡ one-shot.
        let engine = Engine::builder()
            .alphabet(inst.alpha.clone())
            .dtd(inst.dtd.clone())
            .annotation(inst.ann.clone())
            .build()
            .unwrap();
        let session = engine.open(&inst.doc).unwrap();
        let cold = session.propagate(&inst.update).unwrap();
        let warm = session.propagate(&inst.update).unwrap();
        let one_shot = propagate(&i, &pkg, &Config::default()).unwrap();
        let os_fp = fingerprint(&one_shot, &inst.alpha);
        prop_assert_eq!(fingerprint(&cold, &inst.alpha), os_fp.clone(), "{}", inst.name);
        prop_assert_eq!(fingerprint(&warm, &inst.alpha), os_fp, "{}", inst.name);
    }
}

/// One `PropScratch` reused across propagations of *different documents*
/// (the `propagate_batch` inline path with the shared tier off, so every
/// request runs statelessly through the same scratch) produces
/// fingerprints byte-identical to fresh-scratch one-shot runs of the same
/// requests.
#[test]
fn scratch_reused_across_documents_never_leaks_state() {
    let Hospital { alpha, dtd, ann } = hospital();
    let h = Hospital {
        alpha: alpha.clone(),
        dtd: dtd.clone(),
        ann: ann.clone(),
    };
    let engine = Engine::builder()
        .alphabet(alpha.clone())
        .dtd(dtd.clone())
        .annotation(ann.clone())
        .shared_cache(false)
        .build()
        .unwrap();

    // Documents of genuinely different shapes and sizes, each with its
    // own churn-generated update: scratch buffers grown by one request
    // are reused, dirty, by the next.
    let mut requests: Vec<(DocTree, Script)> = Vec::new();
    for (docs, (depts, patients)) in [(2usize, (1usize, 2usize)), (2, (3, 8)), (2, (5, 20))] {
        for d in 0..docs {
            let mut gen = NodeIdGen::new();
            let doc = hospital_doc(&h, depts, patients + d, &mut gen);
            let mut stream = ChurnStream::new(
                &dtd,
                &ann,
                alpha.len(),
                ChurnConfig::default(),
                (depts * 100 + d) as u64,
            );
            let update = stream.next_update(&doc, &mut gen);
            requests.push((doc, update));
        }
    }

    // jobs = 1 → the inline path: one PropScratch serves every request
    // in order.
    let batched = engine.propagate_batch(&requests, 1);

    for ((doc, update), result) in requests.iter().zip(&batched) {
        let prop = result.as_ref().expect("batch request propagates");
        let inst = Instance::new(&dtd, &ann, doc, update, alpha.len()).unwrap();
        let fresh = propagate(&inst, &InsertletPackage::new(), &Config::default()).unwrap();
        assert_eq!(
            fingerprint(prop, &alpha),
            fingerprint(&fresh, &alpha),
            "shared-scratch batch diverged from fresh-scratch one-shot"
        );
    }
    assert!(requests.len() >= 6);
}
