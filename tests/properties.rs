//! Property-based tests (proptest) over the public API.
//!
//! Structured inputs (trees, regexes, scripts) are generated directly as
//! proptest strategies; pipeline-level properties take seeds and drive the
//! deterministic workload generators, so shrinking shrinks the seed.

use proptest::prelude::*;
use xml_view_update::prelude::*;
use xml_view_update::workload::{
    generate_annotation, generate_doc, generate_dtd, generate_update, DocGenConfig, DtdGenConfig,
    UpdateGenConfig,
};

// ---------------------------------------------------------------- trees

/// Strategy: a random term string over labels {a..e} with ≤ 40 nodes.
fn arb_term() -> impl Strategy<Value = String> {
    let leaf = prop::sample::select(vec!["a", "b", "c", "d", "e"]).prop_map(str::to_owned);
    leaf.prop_recursive(4, 40, 5, |inner| {
        (
            prop::sample::select(vec!["a", "b", "c", "d", "e"]),
            prop::collection::vec(inner, 1..4),
        )
            .prop_map(|(l, kids)| format!("{l}({})", kids.join(", ")))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Term syntax round-trips.
    #[test]
    fn term_round_trip(src in arb_term()) {
        let mut alpha = Alphabet::new();
        let mut gen = NodeIdGen::new();
        let t = parse_term(&mut alpha, &mut gen, &src).unwrap();
        let printed = to_term(&t, &alpha);
        prop_assert_eq!(&printed, &src);
        // identifier-annotated round trip too
        let with_ids = to_term_with_ids(&t, &alpha);
        let mut gen2 = NodeIdGen::new();
        let t2 = parse_term_with_ids(&mut alpha, &mut gen2, &with_ids).unwrap();
        prop_assert_eq!(&t, &t2);
    }

    /// Fresh-identifier copies are isomorphic and identifier-disjoint.
    #[test]
    fn fresh_copy_properties(src in arb_term()) {
        let mut alpha = Alphabet::new();
        let mut gen = NodeIdGen::new();
        let t = parse_term(&mut alpha, &mut gen, &src).unwrap();
        let u = t.with_fresh_ids(&mut gen);
        prop_assert!(t.isomorphic(&u));
        for id in u.node_ids() {
            prop_assert!(!t.contains(id));
        }
    }

    /// XML writer/reader round-trips with identifiers.
    #[test]
    fn xml_round_trip(src in arb_term()) {
        let mut alpha = Alphabet::new();
        let mut gen = NodeIdGen::new();
        let t = parse_term(&mut alpha, &mut gen, &src).unwrap();
        let xml = write_xml(&t, &alpha, &WriteOptions { pretty: true, with_ids: true });
        let mut gen2 = NodeIdGen::new();
        let back = read_xml(&mut alpha, &mut gen2, &xml).unwrap();
        prop_assert_eq!(back, t);
    }

    /// Nop-lift is the identity under apply; Ins/Del lifts project as
    /// stated in the paper.
    #[test]
    fn script_lift_laws(src in arb_term()) {
        let mut alpha = Alphabet::new();
        let mut gen = NodeIdGen::new();
        let t = parse_term(&mut alpha, &mut gen, &src).unwrap();
        prop_assert_eq!(apply(&nop_script(&t), &t).unwrap(), t.clone());
        prop_assert!(input_tree(&ins_script(&t)).is_none());
        prop_assert_eq!(output_tree(&ins_script(&t)).unwrap(), t.clone());
        prop_assert_eq!(input_tree(&del_script(&t)).unwrap(), t.clone());
        prop_assert!(output_tree(&del_script(&t)).is_none());
        prop_assert_eq!(cost(&nop_script(&t)), 0);
        prop_assert_eq!(cost(&ins_script(&t)), t.size());
    }
}

// ------------------------------------------------------------- regexes

/// Strategy: random regex syntax over {a, b, c}.
fn arb_regex() -> impl Strategy<Value = String> {
    let atom = prop::sample::select(vec!["a", "b", "c", "eps"]).prop_map(str::to_owned);
    atom.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(x, y)| format!("({x}.{y})")),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| format!("({x}+{y})")),
            inner.clone().prop_map(|x| format!("({x})*")),
            inner.prop_map(|x| format!("({x})?")),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Regex print/parse round-trips to an equal AST.
    #[test]
    fn regex_round_trip(src in arb_regex()) {
        let mut alpha = Alphabet::new();
        let e = xml_view_update::automata::parse_regex(&mut alpha, &src).unwrap();
        let printed = e.to_syntax(&alpha);
        let e2 = xml_view_update::automata::parse_regex(&mut alpha, &printed).unwrap();
        prop_assert_eq!(e, e2);
    }

    /// Glushkov NFA and determinised DFA accept the same words.
    #[test]
    fn nfa_dfa_agree(src in arb_regex(), words in prop::collection::vec(
        prop::collection::vec(0usize..3, 0..6), 1..8))
    {
        let mut alpha = Alphabet::new();
        for l in ["a", "b", "c"] { alpha.intern(l); }
        let e = xml_view_update::automata::parse_regex(&mut alpha, &src).unwrap();
        let nfa = xml_view_update::automata::glushkov(&e);
        let dfa = xml_view_update::automata::Dfa::determinize(&nfa, alpha.len());
        let min = dfa.minimize();
        for w in &words {
            let word: Vec<Sym> = w.iter().map(|&i| Sym::try_from_index(i).expect("word symbol fits a symbol")).collect();
            let by_nfa = nfa.accepts(&word);
            prop_assert_eq!(by_nfa, dfa.accepts(&word));
            prop_assert_eq!(by_nfa, min.accepts(&word));
        }
    }
}

// ------------------------------------------------------- pipeline level

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Views are identifier-preserving, upward-closed restrictions.
    #[test]
    fn view_invariants(seed in 0u64..5000) {
        let mut alpha = Alphabet::new();
        let dtd = generate_dtd(&mut alpha, &DtdGenConfig::default(), seed);
        let ann = generate_annotation(&alpha, 0.35, seed ^ 1, &[]);
        let root = alpha.get("l0").unwrap();
        let mut gen = NodeIdGen::new();
        let doc = generate_doc(&dtd, alpha.len(), root,
            &DocGenConfig { max_depth: 4, ..DocGenConfig::default() }, seed ^ 2, &mut gen);
        let view = extract_view(&ann, &doc);
        // every view node is a source node with the same label
        for n in view.node_ids() {
            prop_assert!(doc.contains(n));
            prop_assert_eq!(doc.label(n), view.label(n));
        }
        // upward closure: the parent of a view node is in the view
        for n in view.node_ids() {
            if let Some(p) = view.parent(n) {
                prop_assert_eq!(doc.parent(n), Some(p));
            }
        }
        // the view satisfies the derived view DTD
        let view_dtd = derive_view_dtd(&dtd, &ann, alpha.len());
        prop_assert!(view_dtd.is_valid(&view));
    }

    /// End-to-end: propagation exists, verifies, and is cost-consistent
    /// (the full Theorem 3/4/5 pipeline on fresh random instances).
    #[test]
    fn pipeline_soundness(seed in 0u64..5000) {
        let mut alpha = Alphabet::new();
        let dtd = generate_dtd(&mut alpha, &DtdGenConfig::default(), seed);
        let ann = generate_annotation(&alpha, 0.3, seed ^ 11, &[]);
        let root = alpha.get("l0").unwrap();
        let mut gen = NodeIdGen::new();
        let doc = generate_doc(&dtd, alpha.len(), root,
            &DocGenConfig { max_depth: 4, max_children: 5, ..DocGenConfig::default() },
            seed ^ 12, &mut gen);
        let update = generate_update(&dtd, &ann, alpha.len(), &doc,
            &UpdateGenConfig { ops: 3, ..UpdateGenConfig::default() }, seed ^ 13, &mut gen);
        let inst = Instance::new(&dtd, &ann, &doc, &update, alpha.len()).unwrap();
        let prop = propagate(&inst, &InsertletPackage::new(), &Config::default()).unwrap();
        verify_propagation(&inst, &prop.script).unwrap();
        prop_assert_eq!(cost(&prop.script) as u64, prop.cost);
        // the identity part: if the update has cost 0 the source is
        // untouched
        if cost(&update) == 0 {
            prop_assert_eq!(output_tree(&prop.script).unwrap(), doc);
        }
    }

    /// Identifier-based diff is a lossless inverse of script application:
    /// for any generated valid update S, diff(In(S), Out(S)) is a script
    /// with the same input/output (the canonical form of S).
    #[test]
    fn diff_round_trips_generated_updates(seed in 0u64..5000) {
        let mut alpha = Alphabet::new();
        let dtd = generate_dtd(&mut alpha, &DtdGenConfig::default(), seed);
        let ann = generate_annotation(&alpha, 0.3, seed ^ 21, &[]);
        let root = alpha.get("l0").unwrap();
        let mut gen = NodeIdGen::new();
        let doc = generate_doc(&dtd, alpha.len(), root,
            &DocGenConfig { max_depth: 4, ..DocGenConfig::default() }, seed ^ 22, &mut gen);
        let update = generate_update(&dtd, &ann, alpha.len(), &doc,
            &UpdateGenConfig::default(), seed ^ 23, &mut gen);
        let view = extract_view(&ann, &doc);
        let out = output_tree(&update).unwrap();
        let canonical = diff(&view, &out).unwrap();
        prop_assert_eq!(input_tree(&canonical).unwrap(), view.clone());
        prop_assert_eq!(output_tree(&canonical).unwrap(), out.clone());
        prop_assert_eq!(apply(&canonical, &view).unwrap(), out);
        prop_assert_eq!(cost(&canonical), cost(&update));
    }

    /// Incremental revalidation accepts every sound propagation and the
    /// cross-view effect under the identity annotation is the whole
    /// propagation.
    #[test]
    fn incremental_and_cross_view(seed in 0u64..5000) {
        let mut alpha = Alphabet::new();
        let dtd = generate_dtd(&mut alpha, &DtdGenConfig::default(), seed);
        let ann = generate_annotation(&alpha, 0.3, seed ^ 31, &[]);
        let root = alpha.get("l0").unwrap();
        let mut gen = NodeIdGen::new();
        let doc = generate_doc(&dtd, alpha.len(), root,
            &DocGenConfig { max_depth: 4, ..DocGenConfig::default() }, seed ^ 32, &mut gen);
        let update = generate_update(&dtd, &ann, alpha.len(), &doc,
            &UpdateGenConfig::default(), seed ^ 33, &mut gen);
        let inst = Instance::new(&dtd, &ann, &doc, &update, alpha.len()).unwrap();
        let prop = propagate(&inst, &InsertletPackage::new(), &Config::default()).unwrap();
        revalidate_output(&dtd, &prop.script).unwrap();
        let full = cross_view_effect(&Annotation::all_visible(), &prop.script).unwrap();
        prop_assert_eq!(cost(&full) as u64, prop.cost);
        // the view the user edited observes exactly their own update cost
        let own = cross_view_effect(&ann, &prop.script).unwrap();
        prop_assert_eq!(cost(&own), cost(&update));
    }

    /// Minimal-tree sizes: witnesses match the computed sizes and satisfy
    /// the DTD.
    #[test]
    fn minsize_witness_agreement(seed in 0u64..5000) {
        let mut alpha = Alphabet::new();
        let dtd = generate_dtd(&mut alpha, &DtdGenConfig::default(), seed);
        let sizes = min_sizes(&dtd, alpha.len());
        let mut gen = NodeIdGen::new();
        for s in alpha.syms() {
            prop_assert!(sizes.is_satisfiable(s));
            let w = minimal_witness(&dtd, &sizes, s, &mut gen, 1 << 20).unwrap();
            prop_assert_eq!(w.size() as u64, sizes.get(s));
            prop_assert!(dtd.is_valid(&w));
        }
    }

    /// Session reuse: a random sequence of updates driven through one
    /// [`Session`] with `commit` yields, at every step, the same
    /// propagation cost and the same output tree as fresh one-shot
    /// `Instance::new` + `propagate` calls against the same document.
    #[test]
    fn session_reuse_matches_one_shot(seed in 0u64..2000) {
        let mut alpha = Alphabet::new();
        let dtd = generate_dtd(&mut alpha, &DtdGenConfig::default(), seed);
        let ann = generate_annotation(&alpha, 0.3, seed ^ 41, &[]);
        let root = alpha.get("l0").unwrap();
        let mut gen = NodeIdGen::new();
        let doc = generate_doc(&dtd, alpha.len(), root,
            &DocGenConfig { max_depth: 4, max_children: 5, ..DocGenConfig::default() },
            seed ^ 42, &mut gen);

        let engine = Engine::builder()
            .alphabet(alpha.clone())
            .dtd(dtd.clone())
            .annotation(ann.clone())
            .build()
            .unwrap();
        let mut session = engine.open(&doc).unwrap();
        let mut one_shot_doc = doc;

        for step in 0..4u64 {
            // the update is generated once against the current document,
            // with fresh identifiers past the session's high-water mark
            let mut g = session.id_gen();
            let update = generate_update(&dtd, &ann, alpha.len(), &one_shot_doc,
                &UpdateGenConfig { ops: 2, ..UpdateGenConfig::default() },
                seed ^ (1000 + step), &mut g);

            // one-shot compatibility path: everything re-derived
            let inst = Instance::new(&dtd, &ann, &one_shot_doc, &update, alpha.len()).unwrap();
            let expect = propagate(&inst, &InsertletPackage::new(), &Config::default()).unwrap();

            // session path: everything update-independent reused
            let prop = session.propagate(&update).unwrap();
            prop_assert_eq!(prop.cost, expect.cost);
            let out_session = output_tree(&prop.script).unwrap();
            let out_one_shot = output_tree(&expect.script).unwrap();
            prop_assert_eq!(&out_session, &out_one_shot);

            session.commit(&prop).unwrap();
            one_shot_doc = out_one_shot;
            prop_assert_eq!(session.document(), &one_shot_doc);
            prop_assert_eq!(session.view(), &extract_view(&ann, &one_shot_doc));
        }
        prop_assert_eq!(session.commits(), 4);
    }

    /// Identifier freshness across commit cycles: after any number of
    /// commits (each potentially minting hidden insertlet material and
    /// deleting previously inserted nodes), identifiers minted from
    /// [`Session::id_gen`] never collide with any node of the session
    /// document — and the generator's frontier never moves backwards, so
    /// no identifier from the session's whole history is ever recycled.
    #[test]
    fn session_id_gen_never_collides_across_commits(seed in 0u64..1000) {
        let mut alpha = Alphabet::new();
        let dtd = generate_dtd(&mut alpha, &DtdGenConfig::default(), seed);
        let ann = generate_annotation(&alpha, 0.3, seed ^ 51, &[]);
        let root = alpha.get("l0").unwrap();
        let mut gen = NodeIdGen::new();
        let doc = generate_doc(&dtd, alpha.len(), root,
            &DocGenConfig { max_depth: 4, max_children: 5, ..DocGenConfig::default() },
            seed ^ 52, &mut gen);

        let engine = Engine::builder()
            .alphabet(alpha.clone())
            .dtd(dtd.clone())
            .annotation(ann.clone())
            .build()
            .unwrap();
        let mut session = engine.open(&doc).unwrap();
        let mut frontier = session.id_gen().peek();

        for step in 0..6u64 {
            let mut g = session.id_gen();
            let update = generate_update(&dtd, &ann, alpha.len(), session.document(),
                &UpdateGenConfig { ops: 3, ..UpdateGenConfig::default() },
                seed ^ (2000 + step), &mut g);
            session.apply(&update).unwrap();

            // the high-water mark is monotone across commits…
            let peek = session.id_gen().peek();
            prop_assert!(peek >= frontier,
                "frontier rewound after commit {}: {} < {}", step + 1, peek, frontier);
            frontier = peek;

            // …and freshly minted identifiers hit nothing in the document
            let mut fresh_gen = session.id_gen();
            for _ in 0..32 {
                let fresh = fresh_gen.fresh();
                prop_assert!(!session.document().contains(fresh),
                    "minted id {} collides after commit {}", fresh, step + 1);
            }
        }
        prop_assert_eq!(session.commits(), 6);
    }

    /// Tree edit distance is a metric on random tree pairs (identity,
    /// symmetry, triangle inequality).
    #[test]
    fn ted_metric_properties(s1 in arb_term(), s2 in arb_term(), s3 in arb_term()) {
        let mut alpha = Alphabet::new();
        let mut gen = NodeIdGen::new();
        let a = parse_term(&mut alpha, &mut gen, &s1).unwrap();
        let b = parse_term(&mut alpha, &mut gen, &s2).unwrap();
        let c = parse_term(&mut alpha, &mut gen, &s3).unwrap();
        prop_assert_eq!(tree_edit_distance(&a, &a), 0);
        let dab = tree_edit_distance(&a, &b);
        let dba = tree_edit_distance(&b, &a);
        prop_assert_eq!(dab, dba);
        let dbc = tree_edit_distance(&b, &c);
        let dac = tree_edit_distance(&a, &c);
        prop_assert!(dac <= dab + dbc, "triangle violated: {} > {} + {}", dac, dab, dbc);
        // distance zero implies isomorphism for label-equality costs
        if dab == 0 {
            prop_assert!(a.isomorphic(&b));
        }
    }
}
