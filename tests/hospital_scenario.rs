//! Integration: the hospital security-view scenario end to end, driven
//! through a compiled [`Engine`] and one long-lived [`Session`].

use xml_view_update::prelude::*;
use xml_view_update::workload::scenario::{
    admit_patient, discharge_patient, hospital, hospital_doc,
};

fn hospital_engine(h: &xml_view_update::workload::scenario::Hospital) -> Engine {
    Engine::builder()
        .alphabet(h.alpha.clone())
        .dtd(h.dtd.clone())
        .annotation(h.ann.clone())
        .build()
        .unwrap()
}

#[test]
fn admissions_and_discharges_round_trip() {
    let h = hospital();
    let mut gen = NodeIdGen::new();
    let doc = hospital_doc(&h, 3, 3, &mut gen);
    let initial_hidden = hidden_ids(&h.ann, &doc);

    let engine = hospital_engine(&h);
    let mut session = engine.open(&doc).unwrap();

    // Admit two patients into department 1, then discharge one from
    // department 0 — all through the same session.
    for round in 0..2 {
        let mut gen = session.id_gen();
        let s = admit_patient(&h, session.document(), 1, &mut gen);
        let prop = session.propagate(&s).unwrap();
        session.verify(&s, &prop.script).unwrap();
        session.commit(&prop).unwrap();
        assert!(engine.dtd().is_valid(session.document()), "round {round}");
    }
    // All originally hidden data survived the admissions.
    for id in &initial_hidden {
        assert!(session.document().contains(*id));
    }

    let before = session.document().size();
    let s = discharge_patient(&h, session.document(), 0, 1);
    let prop = session.apply(&s).unwrap();
    // A full patient (8 nodes, 5 of them hidden) disappeared.
    assert_eq!(before - session.document().size(), 8);
    assert_eq!(prop.cost, 8);
    assert!(engine.dtd().is_valid(session.document()));
    assert_eq!(session.commits(), 3);
}

#[test]
fn admission_cost_is_view_size_of_insert() {
    // The inserted patient is name + record (3 visible nodes); the hidden
    // parts (insurance, diagnoses, …) are all optional in the schema, so
    // the minimal propagation adds nothing invisible.
    let h = hospital();
    let mut gen = NodeIdGen::new();
    let doc = hospital_doc(&h, 1, 1, &mut gen);
    let s = admit_patient(&h, &doc, 0, &mut gen);
    let engine = hospital_engine(&h);
    let prop = engine.open(&doc).unwrap().propagate(&s).unwrap();
    assert_eq!(prop.cost, 3);
}

#[test]
fn large_hospital_propagates_quickly_and_correctly() {
    // A ~8k node document: the polynomial pipeline should handle it
    // easily inside a unit test.
    let h = hospital();
    let mut gen = NodeIdGen::new();
    let doc = hospital_doc(&h, 10, 100, &mut gen);
    assert!(doc.size() > 8_000);
    let s = admit_patient(&h, &doc, 5, &mut gen);
    let engine = hospital_engine(&h);
    let session = engine.open(&doc).unwrap();
    let prop = session.propagate(&s).unwrap();
    session.verify(&s, &prop.script).unwrap();
    assert_eq!(prop.cost, 3);
}

fn hidden_ids(ann: &Annotation, doc: &DocTree) -> Vec<NodeId> {
    let visible = visible_nodes(ann, doc);
    doc.node_ids().filter(|n| !visible.contains(n)).collect()
}
