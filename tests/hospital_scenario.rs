//! Integration: the hospital security-view scenario end to end.

use xml_view_update::prelude::*;
use xml_view_update::workload::scenario::{
    admit_patient, discharge_patient, hospital, hospital_doc,
};

#[test]
fn admissions_and_discharges_round_trip() {
    let h = hospital();
    let mut gen = NodeIdGen::new();
    let mut doc = hospital_doc(&h, 3, 3, &mut gen);
    let initial_hidden = hidden_ids(&h.ann, &doc);

    // Admit two patients into department 1, then discharge one from
    // department 0.
    for round in 0..2 {
        let s = admit_patient(&h, &doc, 1, &mut gen);
        let inst = Instance::new(&h.dtd, &h.ann, &doc, &s, h.alpha.len()).unwrap();
        let prop = propagate(&inst, &InsertletPackage::new(), &Config::default()).unwrap();
        verify_propagation(&inst, &prop.script).unwrap();
        doc = output_tree(&prop.script).unwrap();
        for id in doc.node_ids() {
            gen.bump_past(id);
        }
        assert!(h.dtd.is_valid(&doc), "round {round}");
    }
    // All originally hidden data survived the admissions.
    for id in &initial_hidden {
        assert!(doc.contains(*id));
    }

    let before = doc.size();
    let s = discharge_patient(&h, &doc, 0, 1);
    let inst = Instance::new(&h.dtd, &h.ann, &doc, &s, h.alpha.len()).unwrap();
    let prop = propagate(&inst, &InsertletPackage::new(), &Config::default()).unwrap();
    verify_propagation(&inst, &prop.script).unwrap();
    doc = output_tree(&prop.script).unwrap();
    // A full patient (8 nodes, 5 of them hidden) disappeared.
    assert_eq!(before - doc.size(), 8);
    assert_eq!(prop.cost, 8);
    assert!(h.dtd.is_valid(&doc));
}

#[test]
fn admission_cost_is_view_size_of_insert() {
    // The inserted patient is name + record (3 visible nodes); the hidden
    // parts (insurance, diagnoses, …) are all optional in the schema, so
    // the minimal propagation adds nothing invisible.
    let h = hospital();
    let mut gen = NodeIdGen::new();
    let doc = hospital_doc(&h, 1, 1, &mut gen);
    let s = admit_patient(&h, &doc, 0, &mut gen);
    let inst = Instance::new(&h.dtd, &h.ann, &doc, &s, h.alpha.len()).unwrap();
    let prop = propagate(&inst, &InsertletPackage::new(), &Config::default()).unwrap();
    assert_eq!(prop.cost, 3);
}

#[test]
fn large_hospital_propagates_quickly_and_correctly() {
    // A ~8k node document: the polynomial pipeline should handle it
    // easily inside a unit test.
    let h = hospital();
    let mut gen = NodeIdGen::new();
    let doc = hospital_doc(&h, 10, 100, &mut gen);
    assert!(doc.size() > 8_000);
    let s = admit_patient(&h, &doc, 5, &mut gen);
    let inst = Instance::new(&h.dtd, &h.ann, &doc, &s, h.alpha.len()).unwrap();
    let prop = propagate(&inst, &InsertletPackage::new(), &Config::default()).unwrap();
    verify_propagation(&inst, &prop.script).unwrap();
    assert_eq!(prop.cost, 3);
}

fn hidden_ids(ann: &Annotation, doc: &DocTree) -> Vec<NodeId> {
    let visible = visible_nodes(ann, doc);
    doc.node_ids().filter(|n| !visible.contains(n)).collect()
}
