//! The enumerated differential sweep (experiment E13).
//!
//! `xvu_workload::enumo` enumerates the budgeted grammar space of
//! (DTD family × annotation pattern × update-script shape) recipes —
//! exhaustively, not by sampling — and `xvu_workload::differential` runs
//! the full oracle matrix on every instance:
//!
//! * session-cached propagation (cold and warm) ≡ uncached session ≡
//!   fresh one-shot `Instance`, byte-for-byte;
//! * `count_optimal` ≡ |`enumerate_optimal`| where the count is small
//!   enough to enumerate, every witness verifying at the optimal cost;
//! * the `xvu_repair` minimal-TED baseline never beats the optimal
//!   propagation cost where its candidate enumeration is tractable and
//!   untruncated;
//! * cached and uncached sessions stay in lock-step across commits.
//!
//! Every failure message carries the `(instance …)` recipe term — paste
//! it into `enumo::instance_from_recipe` to replay the exact instance.
//!
//! The default-budget sweep stays small enough for CI; the
//! `EnumBudget::full()` variant is `#[ignore]`d and meant for nightly
//! runs (`cargo test --test enumerated_differential -- --ignored`).

use proptest::prelude::*;
use xml_view_update::prelude::*;
use xml_view_update::workload::differential::{
    differential_check, fingerprint, run_sweep, OracleConfig,
};
use xml_view_update::workload::enumo::{
    enumerate_recipes, instance_from_recipe, random_annotation_for, EnumBudget,
};
use xml_view_update::workload::replay::instance_dump;
use xml_view_update::workload::{ChurnConfig, ChurnStream};

/// The tentpole acceptance gate: the whole default-budget space, zero
/// oracle disagreements, ≥ 200 distinct instances, all coverage regimes
/// represented.
#[test]
fn default_budget_sweep_has_zero_disagreements() {
    let report = run_sweep(&EnumBudget::default(), &OracleConfig::default());
    assert!(
        report.disagreements.is_empty(),
        "{} oracle disagreement(s):\n\n{}",
        report.disagreements.len(),
        report.disagreements.join("\n\n---\n\n")
    );
    assert!(
        report.instances >= 200,
        "only {} enumerated instances (budget too small)",
        report.instances
    );
    for regime in [
        "plain",
        "wide-alternation",
        "heavy-hiding",
        "deep-recursion",
    ] {
        assert!(
            report.regimes.get(regime).copied().unwrap_or(0) > 0,
            "regime {regime:?} not covered: {:?}",
            report.regimes
        );
    }
    assert!(
        report.enumeration_checked > 0,
        "counting×enumeration cross-check never ran"
    );
    assert!(
        report.repair_checked > 0,
        "repair-baseline cross-check never ran"
    );
    assert!(
        report.cache_hits > 0,
        "warm propagations never hit the cache"
    );
    assert!(
        report.shared_hits > 0,
        "sibling sessions never hit the shared memo tier"
    );
    assert!(report.max_count >= 1);
}

/// The nightly-scale sweep: one more plug round, deeper shapes, an extra
/// layer, larger documents. Run with `-- --ignored`.
#[test]
#[ignore = "full-budget sweep; run nightly via -- --ignored"]
fn full_budget_sweep_has_zero_disagreements() {
    let report = run_sweep(&EnumBudget::full(), &OracleConfig::default());
    assert!(
        report.disagreements.is_empty(),
        "{} oracle disagreement(s):\n\n{}",
        report.disagreements.len(),
        report.disagreements.join("\n\n---\n\n")
    );
    assert!(report.instances > 1000, "full budget unexpectedly small");
}

/// Enumerated instances replay deterministically from their recipe term
/// alone — the contract every failure dump relies on.
#[test]
fn recipes_replay_byte_identically() {
    let recipes = enumerate_recipes(&EnumBudget::default());
    for recipe in recipes.iter().step_by(17) {
        let a = instance_from_recipe(recipe).unwrap();
        let b = instance_from_recipe(&a.name.parse().unwrap()).unwrap();
        assert_eq!(a.doc, b.doc, "{recipe}");
        assert_eq!(a.update, b.update, "{recipe}");
        assert_eq!(
            to_term_with_ids(&a.doc, &a.alpha),
            to_term_with_ids(&b.doc, &b.alpha),
            "{recipe}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Satellite: Theorems 5–6 pinned against each other on enumerated
    /// families under *random* annotations (beyond the five enumerated
    /// patterns): wherever the optimal count is small enough to
    /// enumerate without truncation, `count_optimal` equals the number
    /// of distinct optimal propagations, each verifying at the optimal
    /// cost.
    #[test]
    fn count_matches_enumeration(seed in 0u64..10_000) {
        let recipes = enumerate_recipes(&EnumBudget::default());
        let recipe = &recipes[(seed as usize) % recipes.len()];
        let mut inst = instance_from_recipe(recipe).unwrap();
        // swap in a random annotation over the same family; the update
        // must be regenerated against the new view, which the recipe's
        // script component does deterministically
        inst.ann = random_annotation_for(&inst.alpha, 0.25, seed.wrapping_mul(97) ^ 0xA11);
        let root_kept = extract_view(&inst.ann, &inst.doc).size() > 0;
        prop_assert!(root_kept); // annotations never hide the root label pair-lessly
        let recipe_script = xml_view_update::workload::enumo::ScriptRecipe::Mix(2);
        let mut gen = inst.gen.clone();
        inst.update = recipe_script.compile(
            &inst.dtd, &inst.ann, inst.alpha.len(), &inst.doc, seed ^ 0x5EED, &mut gen);

        let dump = || instance_dump(
            &format!("seed {seed}, recipe {}, random ann", inst.name),
            &inst.alpha, &inst.dtd, &inst.ann, &inst.doc, &inst.update);
        let engine = Engine::builder()
            .alphabet(inst.alpha.clone())
            .dtd(inst.dtd.clone())
            .annotation(inst.ann.clone())
            .build()
            .unwrap();
        let session = engine.open(&inst.doc)
            .unwrap_or_else(|e| panic!("open failed: {e}\n{}", dump()));
        let prop = session.propagate(&inst.update)
            .unwrap_or_else(|e| panic!("Theorem 5 violated: {e}\n{}", dump()));
        let count = session.count_optimal(&inst.update)
            .unwrap_or_else(|e| panic!("count failed: {e}\n{}", dump()));
        prop_assert!(count >= 1, "count 0\n{}", dump());
        // Counts equal |enumeration| only for 1-unambiguous content
        // models (the W3C-required class); ambiguous models count paths.
        if inst.deterministic && count <= 48 {
            let cap = count as usize + 1;
            let scripts = session.enumerate_optimal(&inst.update, cap)
                .unwrap_or_else(|e| panic!("enumerate failed: {e}\n{}", dump()));
            let mut terms: Vec<String> =
                scripts.iter().map(|s| script_to_term(s, &inst.alpha)).collect();
            terms.sort();
            terms.dedup();
            prop_assert_eq!(
                terms.len() as u128, count,
                "count ≠ |enumeration|\n{}", dump()
            );
            for s in &scripts {
                session.verify(&inst.update, s)
                    .unwrap_or_else(|e| panic!("witness unsound: {e}\n{}", dump()));
                prop_assert_eq!(
                    cost(s) as u64, prop.cost,
                    "witness not optimal\n{}", dump()
                );
            }
        }
    }
}

/// Satellite: churn over enumerated families — one representative family
/// per coverage regime absorbs ≥ 5 committed churn updates through a
/// cached and an uncached session in lock-step, byte-identically, with
/// the cache demonstrably in play.
#[test]
fn churn_over_enumerated_families_stays_in_lockstep() {
    let families = [
        "(instance (dtd (seq A B) 3 flat) (ann root-run 2) (doc 24 4 3607) (script nop))",
        "(instance (dtd (alt A (star B)) 3 flat) (ann alternate) (doc 24 4 3607) (script nop))",
        "(instance (dtd (star A) 3 flat) (ann leaves) (doc 24 4 3607) (script nop))",
        "(instance (dtd (seq A (star B)) 3 rec) (ann root-run 1) (doc 24 4 3607) (script nop))",
    ];
    let mut total_hits = 0u64;
    for family in families {
        let inst = instance_from_recipe(&family.parse().unwrap()).unwrap();
        let engine = Engine::builder()
            .alphabet(inst.alpha.clone())
            .dtd(inst.dtd.clone())
            .annotation(inst.ann.clone())
            .build()
            .unwrap();
        let mut cached = engine.open(&inst.doc).unwrap();
        let mut uncached = engine.open(&inst.doc).unwrap();
        uncached.set_cache_enabled(false);
        let mut stream = ChurnStream::for_enumerated(&inst, ChurnConfig::default(), 11);
        let mut commits = 0;
        for step in 0..6 {
            let mut g = cached.id_gen();
            let u = stream.next_update(cached.document(), &mut g);
            let pc = cached.propagate(&u).unwrap_or_else(|e| {
                panic!(
                    "step {step}: {e}\n{}",
                    instance_dump(
                        family,
                        &inst.alpha,
                        &inst.dtd,
                        &inst.ann,
                        cached.document(),
                        &u
                    )
                )
            });
            let pu = uncached.propagate(&u).unwrap();
            assert_eq!(
                fingerprint(&pc, &inst.alpha),
                fingerprint(&pu, &inst.alpha),
                "family {family}, step {step}:\n{}",
                instance_dump(
                    family,
                    &inst.alpha,
                    &inst.dtd,
                    &inst.ann,
                    cached.document(),
                    &u
                )
            );
            cached.commit(&pc).unwrap();
            uncached.commit(&pu).unwrap();
            assert_eq!(
                cached.document(),
                uncached.document(),
                "family {family}, step {step}: documents diverged after commit"
            );
            commits += 1;
        }
        assert!(commits >= 5, "family {family}: only {commits} commits");
        assert_eq!(cached.commits(), commits as u64);
        total_hits += cached.cache_stats().hits;
    }
    assert!(total_hits > 0, "churn never exercised the cache");
}

/// The three named scenarios built from the enumerated shape language run
/// the full oracle matrix end to end, and hidden material survives
/// propagation (the security-view property the scenarios model).
#[test]
fn named_enumerated_scenarios_pass_the_oracle_matrix() {
    use xml_view_update::workload::scenario::{
        add_chapter, add_host, audit_doc, audit_redaction, config_doc, config_view, log_event,
        publishing, publishing_doc,
    };

    struct Case {
        name: &'static str,
        s: xml_view_update::workload::scenario::EnumScenario,
        doc: DocTree,
        update: Script,
        hidden_label: &'static str,
    }
    let mut gen = NodeIdGen::new();
    let cases = {
        let p = publishing();
        let pd = publishing_doc(&p, 3, 2, &mut gen);
        let pu = add_chapter(&p, &pd, &mut gen);
        let c = config_view();
        let cd = config_doc(&c, 4, &mut gen);
        let cu = add_host(&c, &cd, &mut gen);
        let a = audit_redaction();
        let ad = audit_doc(&a, 3, 2, &mut gen);
        let au = log_event(&a, &ad, &[1, 0], &mut gen);
        [
            Case {
                name: "publishing",
                s: p,
                doc: pd,
                update: pu,
                hidden_label: "note",
            },
            Case {
                name: "config_view",
                s: c,
                doc: cd,
                update: cu,
                hidden_label: "secret",
            },
            Case {
                name: "audit_redaction",
                s: a,
                doc: ad,
                update: au,
                hidden_label: "actor",
            },
        ]
    };
    for case in &cases {
        let engine = Engine::builder()
            .alphabet(case.s.alpha.clone())
            .dtd(case.s.dtd.clone())
            .annotation(case.s.ann.clone())
            .build()
            .unwrap();
        let session = engine.open(&case.doc).unwrap();
        let prop = session
            .propagate(&case.update)
            .unwrap_or_else(|e| panic!("{}: {e}", case.name));
        session
            .verify(&case.update, &prop.script)
            .unwrap_or_else(|e| panic!("{}: unsound: {e}", case.name));

        // one-shot agreement
        let inst = Instance::new(
            &case.s.dtd,
            &case.s.ann,
            &case.doc,
            &case.update,
            case.s.alpha.len(),
        )
        .unwrap();
        let one_shot = propagate(&inst, &InsertletPackage::new(), &Config::default()).unwrap();
        assert_eq!(prop.cost, one_shot.cost, "{}", case.name);
        assert_eq!(
            script_to_term(&prop.script, &case.s.alpha),
            script_to_term(&one_shot.script, &case.s.alpha),
            "{}",
            case.name
        );

        // side-effect freeness in scenario terms: every hidden node of
        // the source survives into the output (the updates only add
        // material; mandatory hidden children of inserted visible nodes
        // may be minted, so the count can grow but never shrink)
        let out = output_tree(&prop.script).unwrap();
        let hidden = case.s.alpha.get(case.hidden_label).unwrap();
        let count_in = |t: &DocTree| t.preorder().filter(|&n| t.label(n) == hidden).count();
        assert!(
            count_in(&out) >= count_in(&case.doc),
            "{}: hidden {} material not preserved ({} -> {})",
            case.name,
            case.hidden_label,
            count_in(&case.doc),
            count_in(&out)
        );
        assert!(
            count_in(&case.doc) > 0,
            "{}: scenario has no hidden material",
            case.name
        );

        // counting×enumeration on the scenario instance
        let count = session.count_optimal(&case.update).unwrap();
        assert!(count >= 1, "{}", case.name);
        if count <= 64 {
            let scripts = session
                .enumerate_optimal(&case.update, count as usize + 1)
                .unwrap();
            let mut terms: Vec<String> = scripts
                .iter()
                .map(|s| script_to_term(s, &case.s.alpha))
                .collect();
            terms.sort();
            terms.dedup();
            assert_eq!(terms.len() as u128, count, "{}", case.name);
        }
    }
}

/// The enumerated sweep's oracle matrix also holds pointwise on the
/// highest-count instance of the default budget — the family where
/// counting and enumeration have the most room to disagree.
#[test]
fn highest_count_family_still_agrees() {
    let budget = EnumBudget::default();
    let mut best: Option<(u128, String)> = None;
    for recipe in enumerate_recipes(&budget) {
        let inst = instance_from_recipe(&recipe).unwrap();
        let engine = Engine::builder()
            .alphabet(inst.alpha.clone())
            .dtd(inst.dtd.clone())
            .annotation(inst.ann.clone())
            .build()
            .unwrap();
        let session = engine.open(&inst.doc).unwrap();
        let count = session.count_optimal(&inst.update).unwrap();
        if best.as_ref().is_none_or(|(c, _)| count > *c) {
            best = Some((count, inst.name.clone()));
        }
    }
    let (count, name) = best.unwrap();
    assert!(count >= 1);
    let inst = instance_from_recipe(&name.parse().unwrap()).unwrap();
    let out = differential_check(&inst, &OracleConfig::default())
        .unwrap_or_else(|e| panic!("oracle disagreement on max-count family:\n{e}"));
    assert_eq!(out.count, count, "{name}");
}
