//! Randomized validation of the paper's theorems (experiment E11).
//!
//! Over seeded random instances (DTD, annotation, document, valid view
//! update) we check:
//!
//! * **Theorem 5** — a schema-compliant side-effect-free propagation
//!   always exists (`Session::propagate` never fails on a valid
//!   instance);
//! * **Theorems 3–4 soundness** — the produced script verifies, its cost
//!   matches the graph optimum, and no enumerated propagation (optimal or
//!   bounded-suboptimal) is unsound or beats the optimum;
//! * **Theorems 1–2 soundness** — every enumerated inverse of the updated
//!   view is a true inverse and none is smaller than the claimed minimum;
//! * determinism of the end-to-end algorithm, and agreement between the
//!   compiled-engine path and the one-shot compatibility layer.

use xml_view_update::prelude::*;
use xml_view_update::workload::{
    generate_annotation, generate_doc, generate_dtd, generate_update, DocGenConfig, DtdGenConfig,
    UpdateGenConfig,
};

struct RandomInstance {
    alpha: Alphabet,
    dtd: Dtd,
    ann: Annotation,
    doc: DocTree,
    update: Script,
}

impl RandomInstance {
    fn engine(&self) -> Engine {
        Engine::builder()
            .alphabet(self.alpha.clone())
            .dtd(self.dtd.clone())
            .annotation(self.ann.clone())
            .build()
            .unwrap()
    }

    /// Replayable failure report: the RNG seed (paste back into
    /// `random_instance`) plus identifier-preserving term dumps of the
    /// document and update, so any panic below reproduces as a one-liner.
    fn dump(&self, seed: u64) -> String {
        xml_view_update::workload::replay::instance_dump(
            &format!("random_instance(seed={seed})"),
            &self.alpha,
            &self.dtd,
            &self.ann,
            &self.doc,
            &self.update,
        )
    }
}

fn random_instance(seed: u64) -> RandomInstance {
    let mut alpha = Alphabet::new();
    let dtd = generate_dtd(&mut alpha, &DtdGenConfig::default(), seed);
    let ann = generate_annotation(&alpha, 0.3, seed.wrapping_mul(31), &[]);
    let root = alpha.get("l0").expect("root label");
    let mut gen = NodeIdGen::new();
    let doc = generate_doc(
        &dtd,
        alpha.len(),
        root,
        &DocGenConfig {
            max_depth: 5,
            max_children: 6,
            ..DocGenConfig::default()
        },
        seed ^ 0x00c0_ffee,
        &mut gen,
    );
    let update = generate_update(
        &dtd,
        &ann,
        alpha.len(),
        &doc,
        &UpdateGenConfig::default(),
        seed ^ 0x0bad_f00d,
        &mut gen,
    );
    RandomInstance {
        alpha,
        dtd,
        ann,
        doc,
        update,
    }
}

/// Theorem 5 + Theorem 3/4 soundness, 40 seeds.
#[test]
fn theorem5_propagation_always_exists_and_verifies() {
    for seed in 0..40u64 {
        let ri = random_instance(seed);
        let engine = ri.engine();
        let session = engine
            .open(&ri.doc)
            .unwrap_or_else(|e| panic!("generated document invalid: {e}\n{}", ri.dump(seed)));
        let prop = session
            .propagate(&ri.update)
            .unwrap_or_else(|e| panic!("Theorem 5 violated: {e}\n{}", ri.dump(seed)));
        session
            .verify(&ri.update, &prop.script)
            .unwrap_or_else(|e| panic!("unsound propagation: {e}\n{}", ri.dump(seed)));
        assert_eq!(
            cost(&prop.script) as u64,
            prop.cost,
            "script cost differs from graph optimum\n{}",
            ri.dump(seed)
        );
    }
}

/// The engine path and the one-shot compatibility layer produce the
/// identical script on the identical instance.
#[test]
fn engine_and_one_shot_layer_agree() {
    for seed in 0..20u64 {
        let ri = random_instance(seed);
        let engine = ri.engine();
        let by_session = engine.open(&ri.doc).unwrap().propagate(&ri.update).unwrap();
        let inst = Instance::new(&ri.dtd, &ri.ann, &ri.doc, &ri.update, ri.alpha.len()).unwrap();
        let one_shot = propagate(&inst, &InsertletPackage::new(), &Config::default()).unwrap();
        assert_eq!(by_session.cost, one_shot.cost, "{}", ri.dump(seed));
        assert_eq!(
            script_to_term(&by_session.script, &ri.alpha),
            script_to_term(&one_shot.script, &ri.alpha),
            "{}",
            ri.dump(seed)
        );
    }
}

/// Optimality: enumerated optimal propagations all have the optimal cost;
/// bounded full enumeration never beats it. 12 seeds (enumeration is
/// exponential by design).
#[test]
fn theorems_3_4_enumeration_consistency() {
    for seed in 0..12u64 {
        let ri = random_instance(seed);
        let engine = ri.engine();
        let session = engine.open(&ri.doc).unwrap();
        let prop = session.propagate(&ri.update).unwrap();

        let optimal = session.enumerate_optimal(&ri.update, 10).unwrap();
        assert!(!optimal.is_empty(), "{}", ri.dump(seed));
        for s in &optimal {
            session
                .verify(&ri.update, s)
                .unwrap_or_else(|e| panic!("{e}\n{}", ri.dump(seed)));
            assert_eq!(cost(s) as u64, prop.cost, "{}", ri.dump(seed));
        }

        let inst = session.instance(&ri.update).unwrap();
        let bounded = xml_view_update::propagate::enumerate_propagations_bounded(
            &inst,
            &engine.cost_model(),
            &prop.forest,
            engine.config(),
            10,
            12,
        )
        .unwrap();
        for s in &bounded {
            verify_propagation(&inst, s).unwrap_or_else(|e| panic!("{e}\n{}", ri.dump(seed)));
            assert!(
                cost(s) as u64 >= prop.cost,
                "enumeration beat the optimum\n{}",
                ri.dump(seed)
            );
        }
    }
}

/// Theorems 1–2: inverses of the updated view are sound and none beats
/// the claimed minimal size.
#[test]
fn theorems_1_2_inversion_soundness() {
    for seed in 0..20u64 {
        let ri = random_instance(seed);
        let engine = ri.engine();
        let updated_view = output_tree(&ri.update).expect("root preserved");
        let cm = engine.cost_model();
        let forest = InversionForest::build(engine.dtd(), engine.annotation(), &updated_view, &cm)
            .unwrap_or_else(|e| panic!("view must be invertible: {e}\n{}", ri.dump(seed)));
        let mut gen = NodeIdGen::starting_at(1 << 40);
        let min = forest
            .materialize_min(engine.dtd(), &cm, Selector::PreferNop, &mut gen, 100_000)
            .unwrap();
        assert!(engine.dtd().is_valid(&min), "seed {seed}");
        assert_eq!(extract_view(&ri.ann, &min), updated_view, "seed {seed}");
        assert_eq!(min.size() as u64, forest.min_inverse_size(), "seed {seed}");

        let all = forest
            .enumerate_inverses(engine.dtd(), &cm, &mut gen, 100_000, 15, 10)
            .unwrap();
        for inv in &all {
            assert!(engine.dtd().is_valid(inv), "{}", ri.dump(seed));
            assert_eq!(
                extract_view(&ri.ann, inv),
                updated_view,
                "{}",
                ri.dump(seed)
            );
            assert!(
                inv.size() as u64 >= forest.min_inverse_size(),
                "inverse smaller than the claimed minimum\n{}",
                ri.dump(seed)
            );
        }
    }
}

/// The algorithm is deterministic: same instance, same script.
#[test]
fn propagation_is_deterministic_across_runs() {
    for seed in [3u64, 17, 29] {
        let ri = random_instance(seed);
        let engine = ri.engine();
        let session = engine.open(&ri.doc).unwrap();
        let p1 = session.propagate(&ri.update).unwrap();
        let p2 = session.propagate(&ri.update).unwrap();
        assert_eq!(
            script_to_term(&p1.script, &ri.alpha),
            script_to_term(&p2.script, &ri.alpha),
            "seed {seed}"
        );
    }
}

/// All three selectors produce sound propagations of identical cost.
#[test]
fn selectors_agree_on_cost() {
    for seed in 0..10u64 {
        let ri = random_instance(seed);
        let mut costs = Vec::new();
        for sel in [
            Selector::First,
            Selector::PreferNop,
            Selector::PreferTypePreserving,
        ] {
            let engine = Engine::builder()
                .alphabet(ri.alpha.clone())
                .dtd(ri.dtd.clone())
                .annotation(ri.ann.clone())
                .selector(sel)
                .build()
                .unwrap();
            let session = engine.open(&ri.doc).unwrap();
            let prop = session.propagate(&ri.update).unwrap();
            session
                .verify(&ri.update, &prop.script)
                .unwrap_or_else(|e| panic!("{sel:?}: {e}\n{}", ri.dump(seed)));
            costs.push(prop.cost);
        }
        assert!(
            costs.windows(2).all(|w| w[0] == w[1]),
            "selectors disagree on optimal cost: {costs:?}\n{}",
            ri.dump(seed)
        );
    }
}

/// Insertlet packages change materialisation but never optimality w.r.t.
/// their own charges; with minimal packages the cost equals the
/// no-package cost.
#[test]
fn minimal_insertlet_package_preserves_costs() {
    for seed in 0..10u64 {
        let ri = random_instance(seed);
        let bare = ri
            .engine()
            .open(&ri.doc)
            .unwrap()
            .propagate(&ri.update)
            .unwrap();

        let engine = Engine::builder()
            .alphabet(ri.alpha.clone())
            .dtd(ri.dtd.clone())
            .annotation(ri.ann.clone())
            .witness_budget(10_000)
            .minimal_insertlets()
            .build()
            .unwrap();
        let session = engine.open(&ri.doc).unwrap();
        let with_pkg = session.propagate(&ri.update).unwrap();
        session.verify(&ri.update, &with_pkg.script).unwrap();
        assert_eq!(bare.cost, with_pkg.cost, "{}", ri.dump(seed));
    }
}
